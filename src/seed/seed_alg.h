// SeedAlg (paper Section 3.2): aggressive local leader election yielding
// loosely-agreed seeds.
//
// The algorithm runs log(Delta) phases of c4 * log^2(1/eps1) rounds.  An
// active process elects itself leader at the start of phase h with
// probability 2^-(log Delta - h + 1) (so 1/Delta, 2/Delta, ..., 1/2 across
// phases).  A leader immediately decides on its own seed and spends the
// remaining rounds of its phase broadcasting (id, seed) with probability
// 1/log(1/eps1) per round, then goes inactive.  An active non-leader listens
// for the phase; the first (j, s) it hears becomes its decision.  A process
// still active after the last phase decides on its own seed by default.
//
// `SeedAlgRunner` is a round-driven state machine so LBAlg can embed one per
// phase preamble (Section 4.2); `SeedProcess` wraps a runner as a standalone
// sim::Process for the seed-agreement tests and benches.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "sim/packet.h"
#include "sim/process.h"
#include "util/rng.h"

namespace dg::seed {

/// Parameters of SeedAlg(eps1).  The paper's c4 is a "sufficiently large"
/// constant (>= 2 * 4^(c_r * c3)); the struct keeps the exact formula shape
/// with a tunable c4 whose practical default is calibrated empirically
/// (docs/PAPER_MAP.md, substitutions table).
struct SeedAlgParams {
  double eps1 = 0.25;          ///< error parameter, 0 < eps1 <= 1/4
  int num_phases = 1;          ///< log2(Delta), Delta rounded up to a power of 2
  int phase_length = 1;        ///< c4 * ceil(log2(1/eps1))^2 rounds
  double broadcast_prob = 0.5; ///< leaders transmit w.p. 1/log2(1/eps1)

  /// Builds parameters from the error bound and the known degree bound
  /// Delta (Section 2: processes know Delta).
  static SeedAlgParams make(double eps1, std::size_t delta, double c4 = 2.0);

  int total_rounds() const noexcept { return num_phases * phase_length; }
};

/// Participant status (Section 3.2).  Exposed for the analysis tooling that
/// replays the Appendix B region/goodness arguments; the protocol itself
/// never leaks it.
enum class SeedStatus { active, leader, inactive };

/// The decide(j, s) output of the Seed specification.
struct SeedDecision {
  sim::ProcessId owner = 0;       ///< j: the id whose seed was committed
  std::uint64_t seed_value = 0;   ///< s: the committed seed
  bool by_default = false;        ///< decided at the end of all phases
  bool as_leader = false;         ///< decided by electing itself leader
};

/// Round-driven SeedAlg state machine for one participant.
///
/// Drive it with exactly total_rounds() steps; each step is
/// step_transmit() followed by step_receive() iff step_transmit() returned
/// nullopt (the engine only delivers to listeners).
class SeedAlgRunner {
 public:
  /// Draws the initial seed uniformly from the seed domain using the
  /// process's local randomness.
  SeedAlgRunner(const SeedAlgParams& params, sim::ProcessId self, Rng& rng);

  /// Transmit decision for the next round.  Advances the round cursor.
  std::optional<sim::SeedPayload> step_transmit(Rng& rng);

  /// Reception outcome for the round begun by the last step_transmit()
  /// (call only when that returned nullopt).
  void step_receive(const std::optional<sim::Packet>& packet);

  bool done() const noexcept { return step_ >= params_.total_rounds(); }
  int steps_taken() const noexcept { return step_; }

  /// The decision, once made (leaders decide at phase start; listeners on
  /// first reception; everyone by the end of the last phase).
  const std::optional<SeedDecision>& decision() const noexcept {
    return decision_;
  }

  std::uint64_t initial_seed() const noexcept { return initial_seed_; }
  SeedStatus status() const noexcept { return status_; }
  const SeedAlgParams& params() const noexcept { return params_; }

 private:
  using Status = SeedStatus;

  void maybe_finish();

  SeedAlgParams params_;
  sim::ProcessId self_;
  std::uint64_t initial_seed_;
  Status status_ = Status::active;
  int step_ = 0;            // rounds already begun
  int phase_index_ = 0;     // == step_ / phase_length, kept incrementally
  int round_in_phase_ = 0;  // == step_ % phase_length, kept incrementally
  std::optional<SeedDecision> decision_;
};

/// Standalone seed-agreement process: drives one SeedAlgRunner and then
/// idles (listening) forever.  Decisions are exposed for the spec checker.
class SeedProcess final : public sim::Process {
 public:
  SeedProcess(const SeedAlgParams& params, sim::ProcessId id, Rng& rng);

  std::optional<sim::Packet> transmit(sim::RoundContext& ctx) override;
  void receive(const std::optional<sim::Packet>& packet,
               sim::RoundContext& ctx) override;

  /// Sparse-round consent: once the runner is done the process idles
  /// forever (transmit() always nullopt, no coins, receptions ignored), so
  /// it promises an effectively unbounded silent horizon.  The catch-up
  /// side is a no-op -- the done state is absorbing and carries no cursor.
  std::int64_t silent_steps(std::int64_t k) override {
    (void)k;
    if (!runner_.done()) return 0;
    return std::numeric_limits<std::int64_t>::max() / 2;
  }

  /// All state lives in the per-vertex runner; no outbound callbacks.
  bool shard_safe() const override { return true; }

  const std::optional<SeedDecision>& decision() const noexcept {
    return runner_.decision();
  }
  /// Round at which the decide output occurred (0 if none yet).
  sim::Round decision_round() const noexcept { return decision_round_; }

  const SeedAlgRunner& runner() const noexcept { return runner_; }

 private:
  SeedAlgRunner runner_;
  bool listening_this_round_ = false;
  sim::Round decision_round_ = 0;
};

}  // namespace dg::seed
