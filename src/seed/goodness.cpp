#include "seed/goodness.h"

#include <cmath>

#include "util/assert.h"

namespace dg::seed {

GoodnessAnalyzer::GoodnessAnalyzer(const graph::DualGraph& g, double eps1,
                                   double c2)
    : graph_(&g),
      partition_(0.5, std::max(1.0, g.r())),
      threshold_(c2 * std::log2(1.0 / eps1)) {
  DG_EXPECTS(g.embedding().has_value());
  DG_EXPECTS(eps1 > 0.0 && eps1 < 1.0);
  DG_EXPECTS(c2 >= 4.0);  // Appendix B.1
  const auto& emb = *g.embedding();
  region_.reserve(g.size());
  for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(g.size()); ++v) {
    region_.push_back(partition_.region_of(emb[v]));
  }
}

GoodnessSnapshot GoodnessAnalyzer::snapshot(
    const sim::Engine& engine, int phase,
    const SeedAlgParams& params) const {
  DG_EXPECTS(phase >= 1 && phase <= params.num_phases);
  std::unordered_map<geo::RegionId, std::size_t, geo::RegionIdHash> active;
  for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(graph_->size());
       ++v) {
    const auto* p = dynamic_cast<const SeedProcess*>(&engine.process(v));
    DG_EXPECTS(p != nullptr);
    if (p->runner().status() == SeedStatus::active) {
      ++active[region_[v]];
    }
  }

  GoodnessSnapshot out;
  out.phase = phase;
  out.p_h = std::ldexp(1.0, -(params.num_phases - phase + 1));
  out.threshold = threshold_;
  for (const auto& [x, a] : active) {
    const double p_xh = static_cast<double>(a) * out.p_h;
    ++out.regions;
    if (p_xh <= threshold_) ++out.good;
    out.max_p = std::max(out.max_p, p_xh);
  }
  return out;
}

std::unordered_map<geo::RegionId, std::size_t, geo::RegionIdHash>
GoodnessAnalyzer::default_decisions(const sim::Engine& engine) const {
  std::unordered_map<geo::RegionId, std::size_t, geo::RegionIdHash> out;
  for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(graph_->size());
       ++v) {
    const auto* p = dynamic_cast<const SeedProcess*>(&engine.process(v));
    DG_EXPECTS(p != nullptr);
    if (p->decision().has_value() && p->decision()->by_default) {
      ++out[region_[v]];
    }
  }
  return out;
}

}  // namespace dg::seed
