// Machine-checkable form of the Seed(delta, eps) specification (Section 3.1).
//
// The two non-probabilistic conditions (well-formedness, consistency) are
// checked per execution.  The agreement condition -- for each vertex u, at
// most delta distinct owners appear in decide outputs across
// N_G'(u) u {u}, with probability >= 1 - eps -- is evaluated per execution
// here and aggregated into frequencies by the Monte Carlo harnesses.  The
// independence condition is distributional; `owner_seeds` exposes the raw
// material (owner -> seed draws) that the statistical tests consume.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/dual_graph.h"
#include "seed/seed_alg.h"
#include "sim/packet.h"

namespace dg::seed {

/// One execution's worth of decide outputs: decisions[v] is the decide at
/// graph vertex v.
using DecisionVector = std::vector<std::optional<SeedDecision>>;

struct SeedSpecResult {
  /// Condition 1: exactly one decide(*, *)_u per vertex.
  bool well_formed = false;
  /// Condition 2: equal owners imply equal seeds.
  bool consistent = false;
  /// Supplementary sanity (implied by the algorithm, Lemma B.1): every
  /// committed owner is the id of a vertex in N_G'(u) u {u}.
  bool owners_local = false;
  /// max over u of |{owners committed in N_G'(u) u {u}}| -- the quantity the
  /// agreement condition bounds by delta.
  std::size_t max_neighborhood_owners = 0;
  /// Number of distinct owners overall (diagnostics).
  std::size_t distinct_owners = 0;

  /// The event B_{u,delta} held for every u.
  bool agreement(std::size_t delta) const {
    return max_neighborhood_owners <= delta;
  }
};

/// Validates one execution's decisions against the spec.  `ids[v]` is the
/// ProcessId at vertex v (the id() mapping the checker, unlike processes,
/// is allowed to see).
SeedSpecResult check_seed_spec(const graph::DualGraph& g,
                               const std::vector<sim::ProcessId>& ids,
                               const DecisionVector& decisions);

/// Unique owners committed within N_G'(u) u {u} for one vertex (the random
/// variable inside B_{u,delta}).
std::size_t neighborhood_owner_count(const graph::DualGraph& g,
                                     const std::vector<sim::ProcessId>& ids,
                                     const DecisionVector& decisions,
                                     graph::Vertex u);

/// owner id -> committed seed value, for the independence statistics.
std::unordered_map<sim::ProcessId, std::uint64_t> owner_seeds(
    const DecisionVector& decisions);

}  // namespace dg::seed
