// Appendix B analysis tooling: the region "goodness" machinery, executable.
//
// The Theorem 3.1 proof tracks, per plane region x and phase h, the
// cumulative leader-election probability
//     P_{x,h} = a_{x,h} * p_h,
// where a_{x,h} counts the region's still-active nodes at the start of
// phase h and p_h = 2^-(log Delta - h + 1), and calls x "good at h" when
// P_{x,h} <= c2 log(1/eps1).  The induction of Lemma B.10 shows goodness
// persists in a contracting radius around any target node -- the paper's
// substitute for the global union bound that true locality forbids.
//
// GoodnessAnalyzer replays these definitions against live executions of
// SeedProcess networks, giving experiments and tests the same vantage
// point the proofs take.  It is analysis tooling: processes never see it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/region_partition.h"
#include "graph/dual_graph.h"
#include "seed/seed_alg.h"
#include "sim/engine.h"

namespace dg::seed {

struct GoodnessSnapshot {
  int phase = 0;            ///< h, 1-based
  double p_h = 0.0;         ///< leader election probability this phase
  double max_p = 0.0;       ///< max over occupied regions of P_{x,h}
  std::size_t regions = 0;  ///< occupied regions
  std::size_t good = 0;     ///< occupied regions with P_{x,h} <= threshold
  double threshold = 0.0;   ///< c2 log2(1/eps1)

  bool all_good() const noexcept { return good == regions; }
};

/// Replays the per-region quantities of Appendix B against an engine whose
/// processes are SeedProcess instances over an embedded dual graph.
class GoodnessAnalyzer {
 public:
  /// The graph must carry an embedding.  c2 is the goodness constant
  /// (Appendix B.1 requires c2 >= 4).
  GoodnessAnalyzer(const graph::DualGraph& g, double eps1, double c2 = 4.0);

  /// P_{x,h} for every occupied region, measured from the engine's current
  /// process states; `phase` is h (1-based).  Call at phase starts.
  GoodnessSnapshot snapshot(const sim::Engine& engine, int phase,
                            const SeedAlgParams& params) const;

  /// Count of by-default decisions per region after completion (the
  /// quantity Lemma B.5 bounds for good regions).
  std::unordered_map<geo::RegionId, std::size_t, geo::RegionIdHash>
  default_decisions(const sim::Engine& engine) const;

  double threshold() const noexcept { return threshold_; }
  const geo::GridPartition& partition() const noexcept { return partition_; }
  geo::RegionId region_of(graph::Vertex v) const { return region_[v]; }

 private:
  const graph::DualGraph* graph_;
  geo::GridPartition partition_;
  std::vector<geo::RegionId> region_;
  double threshold_;
};

}  // namespace dg::seed
