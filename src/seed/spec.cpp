#include "seed/spec.h"

#include <unordered_set>

#include "util/assert.h"

namespace dg::seed {

namespace {

/// Owners committed at the vertices of N_G'(u) u {u}.
std::unordered_set<sim::ProcessId> owners_near(
    const graph::DualGraph& g, const DecisionVector& decisions,
    graph::Vertex u) {
  std::unordered_set<sim::ProcessId> owners;
  const auto add = [&](graph::Vertex v) {
    if (decisions[v].has_value()) owners.insert(decisions[v]->owner);
  };
  add(u);
  for (graph::Vertex v : g.gprime_neighbors(u)) add(v);
  return owners;
}

}  // namespace

std::size_t neighborhood_owner_count(const graph::DualGraph& g,
                                     const std::vector<sim::ProcessId>& ids,
                                     const DecisionVector& decisions,
                                     graph::Vertex u) {
  DG_EXPECTS(ids.size() == g.size());
  DG_EXPECTS(decisions.size() == g.size());
  return owners_near(g, decisions, u).size();
}

SeedSpecResult check_seed_spec(const graph::DualGraph& g,
                               const std::vector<sim::ProcessId>& ids,
                               const DecisionVector& decisions) {
  DG_EXPECTS(ids.size() == g.size());
  DG_EXPECTS(decisions.size() == g.size());
  const auto n = static_cast<graph::Vertex>(g.size());

  SeedSpecResult result;

  // Condition 1: well-formedness.
  result.well_formed = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!decisions[v].has_value()) {
      result.well_formed = false;
    }
  }

  // Condition 2: consistency (same owner -> same seed).
  result.consistent = true;
  std::unordered_map<sim::ProcessId, std::uint64_t> seed_of_owner;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!decisions[v].has_value()) continue;
    const auto [it, inserted] = seed_of_owner.emplace(
        decisions[v]->owner, decisions[v]->seed_value);
    if (!inserted && it->second != decisions[v]->seed_value) {
      result.consistent = false;
    }
  }
  result.distinct_owners = seed_of_owner.size();

  // Supplementary: owners are local (the id of u itself or of a
  // G'-neighbor).
  result.owners_local = true;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!decisions[v].has_value()) continue;
    const sim::ProcessId owner = decisions[v]->owner;
    bool local = ids[v] == owner;
    if (!local) {
      for (graph::Vertex w : g.gprime_neighbors(v)) {
        if (ids[w] == owner) {
          local = true;
          break;
        }
      }
    }
    if (!local) result.owners_local = false;
  }

  // Agreement statistic: max unique owners over all closed G'-neighborhoods.
  result.max_neighborhood_owners = 0;
  for (graph::Vertex u = 0; u < n; ++u) {
    result.max_neighborhood_owners = std::max(
        result.max_neighborhood_owners, owners_near(g, decisions, u).size());
  }

  return result;
}

std::unordered_map<sim::ProcessId, std::uint64_t> owner_seeds(
    const DecisionVector& decisions) {
  std::unordered_map<sim::ProcessId, std::uint64_t> out;
  for (const auto& d : decisions) {
    if (d.has_value()) out.emplace(d->owner, d->seed_value);
  }
  return out;
}

}  // namespace dg::seed
