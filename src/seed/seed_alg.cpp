#include "seed/seed_alg.h"

#include <cmath>

#include "util/assert.h"
#include "util/intmath.h"

namespace dg::seed {

SeedAlgParams SeedAlgParams::make(double eps1, std::size_t delta, double c4) {
  DG_EXPECTS(eps1 > 0.0 && eps1 <= 0.25);
  DG_EXPECTS(delta >= 1);
  DG_EXPECTS(c4 > 0.0);
  SeedAlgParams p;
  p.eps1 = eps1;
  // The paper assumes Delta is a power of 2 and runs log2(Delta) phases.
  const std::uint64_t delta_pow2 = pow2_ceil(delta);
  p.num_phases = std::max(1, ceil_log2(delta_pow2));
  const double log_eps = log2_clamped(1.0 / eps1, /*floor_at=*/2.0);
  p.phase_length = ceil_to_int(c4 * log_eps * log_eps);
  p.broadcast_prob = 1.0 / log_eps;
  DG_ENSURES(p.broadcast_prob <= 0.5 + 1e-12);
  return p;
}

SeedAlgRunner::SeedAlgRunner(const SeedAlgParams& params, sim::ProcessId self,
                             Rng& rng)
    : params_(params), self_(self), initial_seed_(rng.bits()) {}

std::optional<sim::SeedPayload> SeedAlgRunner::step_transmit(Rng& rng) {
  DG_EXPECTS(!done());
  const int phase_index = phase_index_;  // 0-based
  const int round_in_phase = round_in_phase_;
  ++step_;
  if (++round_in_phase_ == params_.phase_length) {
    round_in_phase_ = 0;
    ++phase_index_;
  }

  if (round_in_phase == 0 && status_ == Status::active) {
    // Leader election at the start of phase h = phase_index + 1 with
    // probability 2^-(num_phases - h + 1): 1/Delta, 2/Delta, ..., 1/2.
    const double p =
        std::ldexp(1.0, -(params_.num_phases - (phase_index + 1) + 1));
    if (rng.chance(p)) {
      status_ = Status::leader;
      decision_ = SeedDecision{self_, initial_seed_, /*by_default=*/false,
                               /*as_leader=*/true};
    }
  }

  std::optional<sim::SeedPayload> out;
  if (status_ == Status::leader) {
    // Leaders broadcast (i, s) during the remaining rounds of their phase.
    if (round_in_phase > 0 && rng.chance(params_.broadcast_prob)) {
      out = sim::SeedPayload{self_, initial_seed_};
    }
    if (round_in_phase == params_.phase_length - 1) {
      status_ = Status::inactive;  // takes effect after this round
    }
  }

  return out;
}

void SeedAlgRunner::step_receive(const std::optional<sim::Packet>& packet) {
  if (status_ == Status::active && packet.has_value() && packet->is_seed()) {
    const sim::SeedPayload& payload = packet->seed();
    decision_ = SeedDecision{payload.owner, payload.seed_value,
                             /*by_default=*/false, /*as_leader=*/false};
    status_ = Status::inactive;
  }
  // The default decision can only be taken once the final round's reception
  // has been processed: a node can still adopt a seed heard in the very
  // last round.
  maybe_finish();
}

void SeedAlgRunner::maybe_finish() {
  if (step_ >= params_.total_rounds() && status_ == Status::active &&
      !decision_.has_value()) {
    // Completed every phase without electing or hearing anyone: decide on
    // the initial seed by default.
    decision_ = SeedDecision{self_, initial_seed_, /*by_default=*/true,
                             /*as_leader=*/false};
    status_ = Status::inactive;
  }
}

SeedProcess::SeedProcess(const SeedAlgParams& params, sim::ProcessId id,
                         Rng& rng)
    : sim::Process(id), runner_(params, id, rng) {}

std::optional<sim::Packet> SeedProcess::transmit(sim::RoundContext& ctx) {
  if (runner_.done()) {
    listening_this_round_ = true;
    return std::nullopt;
  }
  const bool had_decision = runner_.decision().has_value();
  auto payload = runner_.step_transmit(ctx.rng());
  if (!had_decision && runner_.decision().has_value()) {
    decision_round_ = ctx.round();
  }
  listening_this_round_ = !payload.has_value();
  if (!payload.has_value()) return std::nullopt;
  return sim::Packet{id(), *payload};
}

void SeedProcess::receive(const std::optional<sim::Packet>& packet,
                          sim::RoundContext& ctx) {
  DG_ASSERT(listening_this_round_);
  if (runner_.done() && runner_.decision().has_value()) return;
  const bool had_decision = runner_.decision().has_value();
  runner_.step_receive(packet);
  if (!had_decision && runner_.decision().has_value()) {
    decision_round_ = ctx.round();
  }
}

}  // namespace dg::seed
