#include "baseline/tdma.h"

#include <algorithm>

#include "util/assert.h"

namespace dg::baseline {

std::vector<int> distance2_coloring(const graph::DualGraph& g) {
  const auto n = static_cast<graph::Vertex>(g.size());
  std::vector<int> color(n, -1);
  std::vector<char> forbidden;
  for (graph::Vertex v = 0; v < n; ++v) {
    forbidden.assign(g.size() + 1, 0);
    const auto mark = [&](graph::Vertex w) {
      if (color[w] >= 0) forbidden[static_cast<std::size_t>(color[w])] = 1;
    };
    for (graph::Vertex w : g.gprime_neighbors(v)) {
      mark(w);
      for (graph::Vertex x : g.gprime_neighbors(w)) {
        if (x != v) mark(x);
      }
    }
    int c = 0;
    while (forbidden[static_cast<std::size_t>(c)] != 0) ++c;
    color[v] = c;
  }
  return color;
}

TdmaProcess::TdmaProcess(int slot, int num_slots, std::int64_t cycles,
                         sim::ProcessId id, graph::Vertex vertex,
                         lb::LbListener* listener)
    : sim::Process(id),
      slot_(slot),
      num_slots_(num_slots),
      cycles_(cycles),
      vertex_(vertex),
      listener_(listener) {
  DG_EXPECTS(num_slots >= 1);
  DG_EXPECTS(slot >= 0 && slot < num_slots);
  DG_EXPECTS(cycles >= 1);
}

sim::MessageId TdmaProcess::post_bcast(std::uint64_t content) {
  DG_EXPECTS(!busy());
  const sim::MessageId m{id(), ++next_seq_};
  current_ = ActiveMessage{m, content, cycles_ * num_slots_};
  return m;
}

std::optional<sim::Packet> TdmaProcess::transmit(sim::RoundContext& ctx) {
  if (!current_.has_value()) return std::nullopt;
  if ((ctx.round() - 1) % num_slots_ != slot_) return std::nullopt;
  return sim::Packet{id(),
                     sim::DataPayload{current_->id, current_->content}};
}

void TdmaProcess::receive(const std::optional<sim::Packet>& packet,
                          sim::RoundContext& ctx) {
  if (!packet.has_value() || !packet->is_data()) return;
  const sim::DataPayload& data = packet->data();
  if (!seen_.insert(data.id).second) return;
  if (listener_ != nullptr) {
    listener_->on_recv(vertex_, data.id, data.content, ctx.round());
  }
}

void TdmaProcess::end_round(sim::RoundContext& ctx) {
  if (!current_.has_value()) return;
  if (--current_->rounds_left > 0) return;
  if (listener_ != nullptr) {
    listener_->on_ack(vertex_, current_->id, ctx.round());
  }
  current_.reset();
}

}  // namespace dg::baseline
