// Globally-coordinated TDMA baseline.
//
// A distance-2 coloring of G' is computed centrally (something no truly
// local algorithm could do: it requires the whole topology) and each node
// transmits only in the slots of its color.  Because no two vertices within
// two G'-hops share a color, no receiver ever sees two simultaneous
// transmitters, no matter which unreliable edges the scheduler includes:
// transmissions are collision-free by construction.  One full cycle of
// C colors therefore delivers to all reliable neighbors deterministically.
//
// This is the round-robin-style comparator (Clementi et al. [4] showed
// round robin is optimal for fault-tolerant broadcast): an upper reference
// point with perfect global knowledge, against which the truly-local LBAlg
// is compared in E6/E8.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "graph/dual_graph.h"
#include "lb/lb_alg.h"
#include "sim/packet.h"
#include "sim/process.h"

namespace dg::baseline {

/// Greedy distance-2 coloring of G'.  Returns one color per vertex;
/// guarantees no two vertices at G'-distance <= 2 share a color.
std::vector<int> distance2_coloring(const graph::DualGraph& g);

class TdmaProcess final : public sim::Process {
 public:
  /// `slot` is this node's color; `num_slots` the cycle length (max color
  /// + 1 across the network).  Ack fires after `cycles` full cycles.
  TdmaProcess(int slot, int num_slots, std::int64_t cycles, sim::ProcessId id,
              graph::Vertex vertex, lb::LbListener* listener);

  sim::MessageId post_bcast(std::uint64_t content);
  bool busy() const noexcept { return current_.has_value(); }

  std::optional<sim::Packet> transmit(sim::RoundContext& ctx) override;
  void receive(const std::optional<sim::Packet>& packet,
               sim::RoundContext& ctx) override;
  void end_round(sim::RoundContext& ctx) override;

  /// State is per-vertex; only the listener fan-out crosses vertices.
  bool shard_safe() const override {
    return listener_ == nullptr || listener_->concurrent_safe();
  }

 private:
  struct ActiveMessage {
    sim::MessageId id;
    std::uint64_t content = 0;
    std::int64_t rounds_left = 0;
  };

  int slot_;
  int num_slots_;
  std::int64_t cycles_;
  graph::Vertex vertex_;
  lb::LbListener* listener_;
  std::optional<ActiveMessage> current_;
  std::uint32_t next_seq_ = 0;
  std::unordered_set<sim::MessageId, sim::MessageIdHash> seen_;
};

}  // namespace dg::baseline
