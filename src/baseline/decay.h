// The classical Decay local broadcast baseline (Bar-Yehuda, Goldreich,
// Itai [2]).
//
// Senders cycle through a *fixed, deterministic* schedule of geometrically
// decreasing broadcast probabilities 1/2, 1/4, ..., 1/Delta: in round t an
// active sender transmits with probability decay_probability(t, log Delta).
// In reliable radio networks one of these probabilities matches the local
// contention and progress takes O(log Delta) rounds.  The paper's Discussion
// section explains why this breaks in the dual graph model: the schedule is
// known in advance, so an oblivious link scheduler can inflate contention
// exactly in the high-probability rounds and deflate it in the low ones
// (sim::AntiScheduleAdversary does literally that).  Experiment E6 pits the
// two against each other.
//
// The process exports the same bcast/ack/recv service shape as LbProcess so
// benches can compare head to head; acknowledgements fire after a fixed
// round budget (there is no adaptive acknowledgement mechanism in Decay).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "graph/dual_graph.h"
#include "lb/lb_alg.h"
#include "sim/packet.h"
#include "sim/process.h"

namespace dg::baseline {

/// The fixed schedule: probability 2^-(((t-1) mod log_delta) + 1) in round
/// t.  Exposed standalone so AntiScheduleAdversary can be keyed to it.
double decay_probability(sim::Round t, int log_delta);

struct DecayParams {
  int log_delta = 1;            ///< schedule period = log2(Delta)
  std::int64_t ack_rounds = 1;  ///< rounds an input is broadcast before ack
};

class DecayProcess final : public sim::Process {
 public:
  DecayProcess(const DecayParams& params, sim::ProcessId id,
               graph::Vertex vertex, lb::LbListener* listener);

  /// bcast input (same contract as LbProcess::post_bcast).
  sim::MessageId post_bcast(std::uint64_t content);
  bool busy() const noexcept { return current_.has_value(); }

  std::optional<sim::Packet> transmit(sim::RoundContext& ctx) override;
  void receive(const std::optional<sim::Packet>& packet,
               sim::RoundContext& ctx) override;
  void end_round(sim::RoundContext& ctx) override;

  /// State is per-vertex; only the listener fan-out crosses vertices.
  bool shard_safe() const override {
    return listener_ == nullptr || listener_->concurrent_safe();
  }

 private:
  struct ActiveMessage {
    sim::MessageId id;
    std::uint64_t content = 0;
    std::int64_t rounds_left = 0;
  };

  DecayParams params_;
  graph::Vertex vertex_;
  lb::LbListener* listener_;
  std::optional<ActiveMessage> current_;
  std::uint32_t next_seq_ = 0;
  std::unordered_set<sim::MessageId, sim::MessageIdHash> seen_;
};

}  // namespace dg::baseline
