#include "baseline/decay.h"

#include <cmath>

#include "util/assert.h"

namespace dg::baseline {

double decay_probability(sim::Round t, int log_delta) {
  DG_EXPECTS(t >= 1);
  DG_EXPECTS(log_delta >= 1);
  const auto slot = static_cast<int>((t - 1) % log_delta);
  return std::ldexp(1.0, -(slot + 1));
}

DecayProcess::DecayProcess(const DecayParams& params, sim::ProcessId id,
                           graph::Vertex vertex, lb::LbListener* listener)
    : sim::Process(id),
      params_(params),
      vertex_(vertex),
      listener_(listener) {
  DG_EXPECTS(params.log_delta >= 1);
  DG_EXPECTS(params.ack_rounds >= 1);
}

sim::MessageId DecayProcess::post_bcast(std::uint64_t content) {
  DG_EXPECTS(!busy());
  const sim::MessageId m{id(), ++next_seq_};
  current_ = ActiveMessage{m, content, params_.ack_rounds};
  return m;
}

std::optional<sim::Packet> DecayProcess::transmit(sim::RoundContext& ctx) {
  if (!current_.has_value()) return std::nullopt;
  if (!ctx.rng().chance(decay_probability(ctx.round(), params_.log_delta))) {
    return std::nullopt;
  }
  return sim::Packet{id(),
                     sim::DataPayload{current_->id, current_->content}};
}

void DecayProcess::receive(const std::optional<sim::Packet>& packet,
                           sim::RoundContext& ctx) {
  if (!packet.has_value() || !packet->is_data()) return;
  const sim::DataPayload& data = packet->data();
  if (!seen_.insert(data.id).second) return;
  if (listener_ != nullptr) {
    listener_->on_recv(vertex_, data.id, data.content, ctx.round());
  }
}

void DecayProcess::end_round(sim::RoundContext& ctx) {
  if (!current_.has_value()) return;
  if (--current_->rounds_left > 0) return;
  if (listener_ != nullptr) {
    listener_->on_ack(vertex_, current_->id, ctx.round());
  }
  current_.reset();
}

}  // namespace dg::baseline
