// Textual traffic specs: one parser serves every surface that accepts a
// traffic model (dglab --traffic, scenario files' "traffic" key, campaign
// matrix sweeps), mirroring phys/channel_spec so the grammar and the error
// messages cannot drift apart.
//
// Grammar (':'-separated, trailing numbers may be omitted for defaults):
//   saturate[:count]           closed-loop: keep `count` evenly spread
//                              vertices busy forever (default 1)
//   poisson:rate               open-loop: rate arrivals/round network-wide,
//                              uniform vertex (default 0.5; rate bounded to
//                              (0, 256] so the exact Poisson sampler never
//                              underflows)
//   burst:period:size[:count]  every `period` rounds, `size` messages at
//                              each of `count` spread vertices (0 = all;
//                              defaults 64:4:1)
//   hotspot:rate:bias[:hot]    poisson:rate with fraction `bias` of
//                              arrivals at vertex `hot` (defaults
//                              0.5:0.5:0)
// Script environments are inherently programmatic (a post list, not a flat
// string) and stay API-only: traffic::ScriptSource.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "traffic/source.h"

namespace dg::traffic {

struct TrafficSpec {
  enum class Kind { kSaturate, kPoisson, kBurst, kHotspot };
  Kind kind = Kind::kSaturate;
  std::size_t count = 1;     ///< saturate senders / burst targets (0 = all)
  double rate = 0.5;         ///< poisson / hotspot arrivals per round
  std::int64_t period = 64;  ///< burst period in rounds
  std::size_t size = 4;      ///< burst messages per target
  double bias = 0.5;         ///< hotspot fraction routed to `hot`
  std::size_t hot = 0;       ///< hotspot vertex index
};

/// The one-line list of valid specs, embedded in every rejection message
/// (and reusable by callers composing their own errors).
std::string valid_traffic_specs();

/// Parses and range-checks a spec.  Returns the empty string and fills
/// `out` on success, else a human-readable error naming the offending
/// token and listing the valid specs.  Vertex bounds (count <= n, hot < n)
/// are the caller's check: the node count is not known here.
std::string parse_traffic_spec(const std::string& spec, TrafficSpec& out);

/// Builds the source for a validated spec over an n-vertex network.
/// Randomized sources draw from their own stream seeded with `seed`.
/// Contract-checks the vertex bounds.
std::unique_ptr<TrafficSource> build_source(const TrafficSpec& spec,
                                            std::size_t n,
                                            std::uint64_t seed);

}  // namespace dg::traffic
