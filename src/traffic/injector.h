// Injector: the admission layer between TrafficSources and the LB service.
//
// LbProcess admits at most one outstanding message per node (the Section
// 4.1 environment contract), but open-loop sources generate arrivals
// whenever they like.  The injector bridges the two with a per-node FIFO
// queue: sources offer() arrivals each round; the injector admits the head
// of a node's queue whenever the service is idle there, and records the
// full life cycle of every message -- enqueue, admission, first remote
// recv, ack or abort -- in a TrafficStats ledger.
//
// Everything here is deterministic given the sources' seeds: counters and
// latency sums are pure functions of the execution, so campaign counter
// files carrying them stay byte-identical across thread counts (the CI
// gating property).
//
// Layering: the injector drives the service through the narrow LbPort
// interface, so traffic/ depends only on sim/ + graph/ -- lb/simulation.h
// owns an Injector and adapts itself to LbPort, not the other way around.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/packet.h"
#include "traffic/source.h"

namespace dg::traffic {

/// What the injector needs from the broadcast service.
class LbPort {
 public:
  virtual ~LbPort() = default;
  /// The service's one-outstanding busy bit at v.
  virtual bool busy(graph::Vertex v) const = 0;
  /// Posts bcast(m) at v (contract: only when !busy(v)); returns m's id.
  virtual sim::MessageId admit(graph::Vertex v, std::uint64_t content) = 0;
};

/// One enqueued message's life cycle (rounds are 0 where the event has not
/// happened).  enqueue -> admit is queueing delay; enqueue -> ack is the
/// end-to-end latency the E15 experiments chart; enqueue -> first_recv is
/// time to first remote delivery.
struct MessageRecord {
  graph::Vertex vertex = 0;
  std::uint64_t content = 0;
  sim::MessageId id;  ///< assigned at admission (zero while queued)
  sim::Round enqueue_round = 0;
  sim::Round admit_round = 0;
  sim::Round first_recv_round = 0;
  sim::Round ack_round = 0;
  sim::Round abort_round = 0;
  /// Re-queued by a crash of its node while admitted-but-unacked; a later
  /// admission of this record counts as a re-admission.
  bool requeued = false;

  bool admitted() const noexcept { return admit_round != 0; }
  bool acked() const noexcept { return ack_round != 0; }
  bool aborted() const noexcept { return abort_round != 0; }
};

/// Aggregate counters (all deterministic; latency sums pair with their
/// event counts so means never lose information).
struct TrafficStats {
  std::uint64_t offered = 0;   ///< offer() calls, including dropped
  std::uint64_t enqueued = 0;  ///< offers accepted into a queue
  std::uint64_t dropped = 0;   ///< offers rejected at queue capacity
  std::uint64_t admitted = 0;  ///< bcast inputs posted
  std::uint64_t acked = 0;
  std::uint64_t aborted = 0;
  std::uint64_t first_recvs = 0;  ///< messages with >= 1 recv output

  // Fault accounting (crash/recover schedules, see fault/plan.h).  A crash
  // aborts the node's in-flight admitted-but-unacked message; the injector
  // puts it back at the HEAD of the queue -- the source's intent outlives
  // the node -- and re-admits it after recovery.
  std::uint64_t crash_requeues = 0;  ///< in-flight messages re-queued by a crash
  std::uint64_t readmitted = 0;      ///< re-admissions of crash-requeued messages

  std::uint64_t wait_sum = 0;         ///< enqueue->admit, over admitted
  std::uint64_t ack_latency_sum = 0;  ///< enqueue->ack, over acked
  std::uint64_t recv_latency_sum = 0;  ///< enqueue->first recv

  // Two different scopes on purpose: backlog is the NETWORK-WIDE queued
  // total (the "how far behind is the system" series), depth_max the
  // worst SINGLE-NODE queue (the "how big must a buffer be" bound).
  std::uint64_t depth_samples = 0;  ///< rounds observed
  std::uint64_t depth_sum = 0;      ///< network-wide queued total, per round
  std::uint64_t depth_max = 0;      ///< max single-node queue depth

  double mean_wait() const noexcept {
    return admitted ? static_cast<double>(wait_sum) /
                          static_cast<double>(admitted)
                    : 0.0;
  }
  double mean_ack_latency() const noexcept {
    return acked ? static_cast<double>(ack_latency_sum) /
                       static_cast<double>(acked)
                 : 0.0;
  }
  double mean_recv_latency() const noexcept {
    return first_recvs ? static_cast<double>(recv_latency_sum) /
                             static_cast<double>(first_recvs)
                       : 0.0;
  }
  /// Mean network-wide backlog (queued messages summed over all nodes)
  /// per observed round.  NOT per-node: it can exceed depth_max.
  double mean_backlog() const noexcept {
    return depth_samples ? static_cast<double>(depth_sum) /
                               static_cast<double>(depth_samples)
                         : 0.0;
  }
};

class Injector {
 public:
  /// `port` must outlive the injector.
  Injector(std::size_t nodes, LbPort& port);

  // ---- configuration ----

  void add_source(std::unique_ptr<TrafficSource> source);

  /// Per-node queue bound; offers beyond it are dropped (and counted).
  /// 0 = unbounded (default).
  void set_queue_capacity(std::size_t capacity) { capacity_ = capacity; }

  // ---- per-round driving (called by LbSimulation) ----

  /// The environment input step for `round` (the round about to execute):
  /// every source steps in attach order, then each node with an idle
  /// service admits its queue head, then queue depths are sampled.
  void step(sim::Round round);

  // ---- service output notifications (wired through LbSimulation) ----

  void on_ack(const sim::MessageId& m, sim::Round round);
  void on_recv(const sim::MessageId& m, sim::Round round);
  void on_abort(const sim::MessageId& m, sim::Round round);

  // ---- fault notifications (wired through LbSimulation's FaultListener) --

  /// Vertex v crashed at `round`.  Any admitted-but-unacked message of v's
  /// is accounted as aborted and re-queued at the head of v's queue (the
  /// queue is the source's intent, which outlives the node; the re-queue
  /// bypasses the capacity bound -- the message was already accepted once).
  /// While down, v admits nothing; offers keep queueing as usual.
  void on_crash(graph::Vertex v, sim::Round round);
  /// Vertex v recovered: admission resumes at the next step().
  void on_recover(graph::Vertex v, sim::Round round);

  // ---- results ----

  const TrafficStats& stats() const noexcept { return stats_; }
  /// Every non-dropped message ever offered, in enqueue order.
  const std::vector<MessageRecord>& messages() const noexcept {
    return records_;
  }
  std::size_t queue_depth(graph::Vertex v) const {
    return queues_[v].size();
  }
  bool down(graph::Vertex v) const { return down_[v]; }

 private:
  class Port;  // Admission implementation handed to sources

  void enqueue(graph::Vertex v, std::uint64_t content, bool auto_content,
               sim::Round round);

  LbPort* port_;
  std::vector<std::unique_ptr<TrafficSource>> sources_;
  std::size_t capacity_ = 0;

  std::vector<std::deque<std::size_t>> queues_;  ///< record indices, FIFO
  /// Vertices whose queue is non-empty (each exactly once, in
  /// empty->non-empty transition order).  The admission and depth-sample
  /// steps iterate this instead of all n queues, so a round costs
  /// O(#sources + #queued vertices) -- the keep_busy shim stays off the
  /// engine's O(n) budget on big topologies.
  std::vector<graph::Vertex> active_;
  std::vector<std::uint64_t> arrival_counter_;   ///< auto-content per node
  std::vector<bool> down_;  ///< crashed vertices admit nothing
  /// Record index + 1 of the admitted-but-unacked message per vertex
  /// (0 = none); lets a crash find the in-flight message without a scan.
  std::vector<std::size_t> inflight_;
  std::vector<MessageRecord> records_;
  /// Admitted id -> record index (acks/recvs/aborts arrive by MessageId).
  std::unordered_map<sim::MessageId, std::size_t, sim::MessageIdHash>
      index_of_;
  TrafficStats stats_;
};

}  // namespace dg::traffic
