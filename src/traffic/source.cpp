#include "traffic/source.h"

#include <cmath>

#include "util/assert.h"

namespace dg::traffic {

namespace {

/// Knuth's Poisson sampler: exact for the small per-round rates traffic
/// specs use (rate is arrivals per ROUND, so it is O(1) in expectation).
std::size_t poisson_draw(Rng& rng, double rate) {
  const double limit = std::exp(-rate);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

}  // namespace

std::vector<graph::Vertex> spread_vertices(std::size_t count, std::size_t n) {
  DG_EXPECTS(count >= 1 && count <= n);
  std::vector<graph::Vertex> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<graph::Vertex>((i * n) / count));
  }
  return out;
}

SaturateSource::SaturateSource(std::vector<graph::Vertex> vertices)
    : vertices_(std::move(vertices)) {}

void SaturateSource::step(Admission& q, sim::Round) {
  // One fresh message whenever a designated vertex is idle: offered with an
  // empty queue, it is admitted this very round, which is exactly the
  // legacy keep_busy post (same contents, same rounds).
  for (graph::Vertex v : vertices_) {
    if (!q.service_busy(v) && q.queue_depth(v) == 0) q.offer(v);
  }
}

ScriptSource::ScriptSource(std::vector<Post> posts)
    : posts_(std::move(posts)) {
  for (std::size_t i = 1; i < posts_.size(); ++i) {
    DG_EXPECTS(posts_[i - 1].round <= posts_[i].round);
  }
}

void ScriptSource::step(Admission& q, sim::Round round) {
  while (next_ < posts_.size() && posts_[next_].round <= round) {
    const Post& p = posts_[next_++];
    if (p.content != 0) {
      q.offer(p.vertex, p.content);
    } else {
      q.offer(p.vertex);
    }
  }
}

PoissonSource::PoissonSource(double rate, std::uint64_t seed)
    : rate_(rate), rng_(seed) {
  // Upper bound keeps poisson_draw's exp(-rate) away from underflow (the
  // spec grammar enforces 256; anything below ~700 is exact).
  DG_EXPECTS(rate > 0.0 && rate < 700.0);
}

void PoissonSource::step(Admission& q, sim::Round) {
  const std::size_t k = poisson_draw(rng_, rate_);
  for (std::size_t i = 0; i < k; ++i) {
    q.offer(static_cast<graph::Vertex>(rng_.below(q.nodes())));
  }
}

BurstSource::BurstSource(sim::Round period, std::size_t size,
                         std::vector<graph::Vertex> targets)
    : period_(period), size_(size), targets_(std::move(targets)) {
  DG_EXPECTS(period >= 1 && size >= 1 && !targets_.empty());
}

void BurstSource::step(Admission& q, sim::Round round) {
  if ((round - 1) % period_ != 0) return;
  for (graph::Vertex v : targets_) {
    for (std::size_t i = 0; i < size_; ++i) q.offer(v);
  }
}

HotspotSource::HotspotSource(double rate, double bias, graph::Vertex hot,
                             std::uint64_t seed)
    : rate_(rate), bias_(bias), hot_(hot), rng_(seed) {
  DG_EXPECTS(rate > 0.0 && rate < 700.0);
  DG_EXPECTS(bias >= 0.0 && bias <= 1.0);
}

void HotspotSource::step(Admission& q, sim::Round) {
  const std::size_t k = poisson_draw(rng_, rate_);
  for (std::size_t i = 0; i < k; ++i) {
    const graph::Vertex v =
        rng_.chance(bias_) ? hot_
                           : static_cast<graph::Vertex>(rng_.below(q.nodes()));
    q.offer(v);
  }
}

}  // namespace dg::traffic
