#include "traffic/spec.h"

#include <cmath>
#include <string>
#include <vector>

#include "scn/spec_error.h"
#include "util/assert.h"
#include "util/specparse.h"

namespace dg::traffic {

namespace {

using spec::parse_num;
using spec::split;

/// Upper bound on poisson/hotspot arrival rates (per round, network-wide).
/// Knuth's sampler multiplies uniforms until the product drops below
/// exp(-rate), which underflows to 0 near rate ~745 and silently caps the
/// draw; 256 arrivals/round is already far past any service capacity in
/// this stack, so the bound costs nothing and keeps the sampler exact.
constexpr double kMaxRate = 256.0;

/// Integral argument check with an explicit ceiling: the subsequent
/// double->integer casts are undefined for values past the integer range,
/// so e.g. "saturate:1e20" must die here with a message, not in a cast.
constexpr double kMaxInt = 2147483647.0;  // 2^31 - 1
bool int_in(double v, double min) {
  return v == std::floor(v) && v >= min && v <= kMaxInt;
}

}  // namespace

std::string valid_traffic_specs() {
  return "saturate[:count], poisson:rate, burst:period:size[:count], "
         "hotspot:rate:bias[:hot]";
}

std::string parse_traffic_spec(const std::string& spec, TrafficSpec& out) {
  out = TrafficSpec{};
  const auto parts = split(spec, ':');
  if (parts.empty()) {
    return "empty traffic spec (valid: " + valid_traffic_specs() + ")";
  }
  const std::string& kind = parts[0];
  const auto arity = [&](std::size_t max_args) -> std::string {
    if (parts.size() - 1 > max_args) {
      return "traffic '" + kind + "' takes at most " +
             std::to_string(max_args) + " argument(s); got '" + spec + "'";
    }
    return "";
  };
  const auto arg = [&](std::size_t i, double dflt, double& value) -> bool {
    value = dflt;
    if (parts.size() <= i) return true;
    return parse_num(parts[i], value);
  };
  double a = 0, b = 0, c = 0;
  if (kind == "saturate") {
    out.kind = TrafficSpec::Kind::kSaturate;
    if (auto e = arity(1); !e.empty()) return e;
    if (!arg(1, 1, a) || !int_in(a, 1)) {
      return "malformed saturate:count in '" + spec +
             "' (count must be an integer in [1, 2^31))";
    }
    out.count = static_cast<std::size_t>(a);
    return "";
  }
  if (kind == "poisson") {
    out.kind = TrafficSpec::Kind::kPoisson;
    if (auto e = arity(1); !e.empty()) return e;
    if (!arg(1, 0.5, a) || !(a > 0.0 && a <= kMaxRate)) {
      return "malformed poisson:rate in '" + spec +
             "' (rate must be in (0, " + std::to_string(int(kMaxRate)) +
             "] arrivals/round)";
    }
    out.rate = a;
    return "";
  }
  if (kind == "burst") {
    out.kind = TrafficSpec::Kind::kBurst;
    if (auto e = arity(3); !e.empty()) return e;
    if (!arg(1, 64, a) || !arg(2, 4, b) || !arg(3, 1, c)) {
      return "malformed burst:period:size:count in '" + spec + "'";
    }
    if (!int_in(a, 1) || !int_in(b, 1) || !int_in(c, 0)) {
      return "burst needs integers in [0, 2^31): period >= 1, size >= 1, "
             "count >= 0 (0 = all vertices); got '" +
             spec + "'";
    }
    out.period = static_cast<std::int64_t>(a);
    out.size = static_cast<std::size_t>(b);
    out.count = static_cast<std::size_t>(c);
    return "";
  }
  if (kind == "hotspot") {
    out.kind = TrafficSpec::Kind::kHotspot;
    if (auto e = arity(3); !e.empty()) return e;
    if (!arg(1, 0.5, a) || !(a > 0.0 && a <= kMaxRate)) {
      return "malformed hotspot rate in '" + spec +
             "' (rate must be in (0, " + std::to_string(int(kMaxRate)) +
             "] arrivals/round)";
    }
    if (!arg(2, 0.5, b) || !(b >= 0.0 && b <= 1.0)) {
      return "malformed hotspot bias in '" + spec +
             "' (bias must be in [0, 1])";
    }
    if (!arg(3, 0, c) || !int_in(c, 0)) {
      return "malformed hotspot vertex in '" + spec +
             "' (hot must be a vertex index below 2^31)";
    }
    out.rate = a;
    out.bias = b;
    out.hot = static_cast<std::size_t>(c);
    return "";
  }
  return scn::unknown_spec("traffic", kind, valid_traffic_specs());
}

std::unique_ptr<TrafficSource> build_source(const TrafficSpec& spec,
                                            std::size_t n,
                                            std::uint64_t seed) {
  DG_EXPECTS(n >= 1);
  switch (spec.kind) {
    case TrafficSpec::Kind::kSaturate:
      return std::make_unique<SaturateSource>(
          spread_vertices(spec.count, n));
    case TrafficSpec::Kind::kPoisson:
      return std::make_unique<PoissonSource>(spec.rate, seed);
    case TrafficSpec::Kind::kBurst: {
      std::vector<graph::Vertex> targets =
          spec.count == 0 ? spread_vertices(n, n)
                          : spread_vertices(spec.count, n);
      return std::make_unique<BurstSource>(spec.period, spec.size,
                                           std::move(targets));
    }
    case TrafficSpec::Kind::kHotspot:
      DG_EXPECTS(spec.hot < n);
      return std::make_unique<HotspotSource>(
          spec.rate, spec.bias, static_cast<graph::Vertex>(spec.hot), seed);
  }
  DG_ASSERT(false);
  return nullptr;
}

}  // namespace dg::traffic
