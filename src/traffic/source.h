// Pluggable traffic sources: the environment side of the LB service
// (Section 4.1's environment automaton), promoted to a first-class
// subsystem.
//
// A TrafficSource decides *what the environment wants to send* each round;
// the admission layer (traffic/injector.h) decides *when the service can
// take it*, by queueing offers per node over LbProcess's
// one-outstanding-message contract.  Sources therefore never talk to
// LbProcess directly: they see only the Admission interface -- node count,
// service busy/queue state (for closed-loop sources), and offer().
//
// Shipped sources:
//   Saturate  closed-loop: keeps a vertex set busy forever -- one fresh
//             offer whenever a designated node is idle with an empty
//             queue.  Reproduces LbSimulation::keep_busy bit-for-bit (the
//             workload behind the paper's progress/ack experiments).
//   Script    a fixed (round, vertex[, content]) post list -- the other
//             legacy environment, now data.
//   Poisson   open-loop arrivals: k ~ Poisson(rate) offers per round,
//             each at a uniformly random vertex (the multi-message
//             regime of Ghaffari-Kantor-Lynch-Newport).
//   Burst     every `period` rounds, `size` back-to-back offers at each
//             target vertex (queue-depth stress).
//   Hotspot   Poisson arrivals with a biased vertex choice: fraction
//             `bias` of arrivals hit one hot vertex, the rest are
//             uniform (contention skew).
//
// Sources draw randomness from their own Rng stream, never the engine's,
// so attaching one perturbs neither the protocol's coins nor the
// scheduler: executions stay bit-reproducible for a given master seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/dual_graph.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace dg::traffic {

/// What a source sees of the admission layer (implemented by Injector).
class Admission {
 public:
  virtual ~Admission() = default;

  virtual std::size_t nodes() const = 0;

  /// True while the service holds an outstanding (unacked, unaborted)
  /// message at v -- the one-outstanding contract's busy bit.
  virtual bool service_busy(graph::Vertex v) const = 0;

  /// Messages queued at v awaiting admission.
  virtual std::size_t queue_depth(graph::Vertex v) const = 0;

  /// Offers one message for admission at v.  Content is assigned from v's
  /// arrival counter (1, 2, ...; the keep_busy convention).  The offer is
  /// dropped (and counted as such) if v's queue is at capacity.
  virtual void offer(graph::Vertex v) = 0;

  /// Same, with explicit application content (Script environments).
  virtual void offer(graph::Vertex v, std::uint64_t content) = 0;
};

/// Per-round arrival generator.  step() is invoked exactly once per round,
/// immediately before the round executes; `round` is the round about to
/// run (messages admitted now are delivered as bcast(m) inputs at its
/// start, matching LbSimulation::post_bcast timing).
class TrafficSource {
 public:
  virtual ~TrafficSource() = default;
  virtual std::string name() const = 0;
  virtual void step(Admission& q, sim::Round round) = 0;
};

/// The `count` designated senders of an n-vertex network, spread evenly:
/// vertex (i * n) / count for i in [0, count).  (The dglab --senders
/// placement; count must be in [1, n].)
std::vector<graph::Vertex> spread_vertices(std::size_t count, std::size_t n);

class SaturateSource final : public TrafficSource {
 public:
  explicit SaturateSource(std::vector<graph::Vertex> vertices);

  std::string name() const override { return "saturate"; }
  void step(Admission& q, sim::Round round) override;

 private:
  std::vector<graph::Vertex> vertices_;
};

class ScriptSource final : public TrafficSource {
 public:
  struct Post {
    sim::Round round = 1;          ///< earliest round to offer at
    graph::Vertex vertex = 0;
    std::uint64_t content = 0;     ///< 0 = auto (arrival counter)
  };

  /// Posts must be sorted by round (contract-checked).
  explicit ScriptSource(std::vector<Post> posts);

  std::string name() const override { return "script"; }
  void step(Admission& q, sim::Round round) override;

 private:
  std::vector<Post> posts_;
  std::size_t next_ = 0;
};

class PoissonSource final : public TrafficSource {
 public:
  /// `rate` is the expected number of arrivals per round across the whole
  /// network; each arrival picks a uniform vertex.
  PoissonSource(double rate, std::uint64_t seed);

  std::string name() const override { return "poisson"; }
  void step(Admission& q, sim::Round round) override;

 private:
  double rate_;
  Rng rng_;
};

class BurstSource final : public TrafficSource {
 public:
  /// Every `period` rounds (starting at round 1), offers `size` messages
  /// at each target vertex.
  BurstSource(sim::Round period, std::size_t size,
              std::vector<graph::Vertex> targets);

  std::string name() const override { return "burst"; }
  void step(Admission& q, sim::Round round) override;

 private:
  sim::Round period_;
  std::size_t size_;
  std::vector<graph::Vertex> targets_;
};

class HotspotSource final : public TrafficSource {
 public:
  /// Poisson(rate) arrivals per round; each lands on `hot` with
  /// probability `bias`, else on a uniform vertex.
  HotspotSource(double rate, double bias, graph::Vertex hot,
                std::uint64_t seed);

  std::string name() const override { return "hotspot"; }
  void step(Admission& q, sim::Round round) override;

 private:
  double rate_;
  double bias_;
  graph::Vertex hot_;
  Rng rng_;
};

}  // namespace dg::traffic
