#include "traffic/injector.h"

#include <algorithm>

#include "util/assert.h"

namespace dg::traffic {

/// Admission facade handed to sources: routes offers into the owning
/// injector's queues and answers state queries.  `round_` carries the
/// round currently being stepped.
class Injector::Port final : public Admission {
 public:
  Port(Injector& owner, sim::Round round) : owner_(&owner), round_(round) {}

  std::size_t nodes() const override { return owner_->queues_.size(); }
  bool service_busy(graph::Vertex v) const override {
    return owner_->port_->busy(v);
  }
  std::size_t queue_depth(graph::Vertex v) const override {
    return owner_->queues_[v].size();
  }
  void offer(graph::Vertex v) override {
    owner_->enqueue(v, 0, /*auto_content=*/true, round_);
  }
  void offer(graph::Vertex v, std::uint64_t content) override {
    owner_->enqueue(v, content, /*auto_content=*/false, round_);
  }

 private:
  Injector* owner_;
  sim::Round round_;
};

Injector::Injector(std::size_t nodes, LbPort& port)
    : port_(&port),
      queues_(nodes),
      arrival_counter_(nodes, 0),
      down_(nodes, false),
      inflight_(nodes, 0) {}

void Injector::add_source(std::unique_ptr<TrafficSource> source) {
  DG_EXPECTS(source != nullptr);
  sources_.push_back(std::move(source));
}

void Injector::enqueue(graph::Vertex v, std::uint64_t content,
                       bool auto_content, sim::Round round) {
  DG_EXPECTS(v < static_cast<graph::Vertex>(queues_.size()));
  ++stats_.offered;
  if (capacity_ != 0 && queues_[v].size() >= capacity_) {
    ++stats_.dropped;
    return;
  }
  MessageRecord rec;
  rec.vertex = v;
  // Auto contents continue the keep_busy convention: the k-th arrival at v
  // carries content k (1-based), so Saturate reproduces the legacy
  // environment's payloads exactly.
  rec.content = auto_content ? ++arrival_counter_[v] : content;
  rec.enqueue_round = round;
  if (queues_[v].empty()) active_.push_back(v);
  queues_[v].push_back(records_.size());
  records_.push_back(rec);
  ++stats_.enqueued;
}

void Injector::step(sim::Round round) {
  // Crash re-queues can leave messages waiting even with no sources
  // attached, so the fast exit for non-traffic runs needs both empty.
  if (sources_.empty() && active_.empty()) return;

  // 1. Arrival step: sources offer, in attach order (keep_busy call order).
  Port port(*this, round);
  for (const auto& source : sources_) source->step(port, round);

  // 2. Admission step: each idle node with a non-empty queue takes its
  //    head.  The service contract allows one outstanding message, so at
  //    most one admission per node per round.  Only the active list is
  //    scanned; stats are order-independent sums, so the transition-order
  //    walk is equivalent to a full vertex sweep.
  // 3. Depth sample, fused: what stays queued over this round.
  ++stats_.depth_samples;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const graph::Vertex v = active_[i];
    if (!down_[v] && !port_->busy(v)) {
      const std::size_t index = queues_[v].front();
      queues_[v].pop_front();
      MessageRecord& rec = records_[index];
      rec.id = port_->admit(v, rec.content);
      rec.admit_round = round;
      index_of_.emplace(rec.id, index);
      inflight_[v] = index + 1;
      ++stats_.admitted;
      if (rec.requeued) ++stats_.readmitted;
      stats_.wait_sum +=
          static_cast<std::uint64_t>(round - rec.enqueue_round);
    }
    const std::size_t depth = queues_[v].size();
    if (depth == 0) continue;  // drained: drop from the active list
    active_[keep++] = v;
    stats_.depth_sum += depth;
    stats_.depth_max = std::max<std::uint64_t>(stats_.depth_max, depth);
  }
  active_.resize(keep);
}

void Injector::on_ack(const sim::MessageId& m, sim::Round round) {
  if (index_of_.empty()) return;  // keep non-traffic runs off the hash path
  const auto it = index_of_.find(m);
  if (it == index_of_.end()) return;  // direct post_bcast, not ours
  MessageRecord& rec = records_[it->second];
  if (rec.ack_round != 0) return;
  rec.ack_round = round;
  if (inflight_[rec.vertex] == it->second + 1) inflight_[rec.vertex] = 0;
  ++stats_.acked;
  stats_.ack_latency_sum +=
      static_cast<std::uint64_t>(round - rec.enqueue_round);
}

void Injector::on_recv(const sim::MessageId& m, sim::Round round) {
  if (index_of_.empty()) return;  // keep non-traffic runs off the hash path
  const auto it = index_of_.find(m);
  if (it == index_of_.end()) return;
  MessageRecord& rec = records_[it->second];
  if (rec.first_recv_round != 0) return;
  rec.first_recv_round = round;
  ++stats_.first_recvs;
  stats_.recv_latency_sum +=
      static_cast<std::uint64_t>(round - rec.enqueue_round);
}

void Injector::on_abort(const sim::MessageId& m, sim::Round round) {
  if (index_of_.empty()) return;
  const auto it = index_of_.find(m);
  if (it == index_of_.end()) return;
  MessageRecord& rec = records_[it->second];
  if (rec.abort_round != 0) return;
  rec.abort_round = round;
  if (inflight_[rec.vertex] == it->second + 1) inflight_[rec.vertex] = 0;
  ++stats_.aborted;
}

void Injector::on_crash(graph::Vertex v, sim::Round round) {
  DG_EXPECTS(v < static_cast<graph::Vertex>(queues_.size()));
  down_[v] = true;
  const std::size_t slot = inflight_[v];
  if (slot == 0) return;  // nothing of ours was in flight
  inflight_[v] = 0;
  const std::size_t index = slot - 1;
  MessageRecord& rec = records_[index];
  // The crash aborts the service-side broadcast; account it here (the
  // wrapper routes the crash-abort to us through this call, not on_abort)
  // and put the message back at the head of the queue for re-admission
  // after recovery.  Its next admission assigns a fresh MessageId.
  if (rec.abort_round == 0) {
    rec.abort_round = round;
    ++stats_.aborted;
  }
  if (queues_[v].empty()) active_.push_back(v);
  queues_[v].push_front(index);
  rec.requeued = true;
  ++stats_.crash_requeues;
}

void Injector::on_recover(graph::Vertex v, sim::Round round) {
  (void)round;
  DG_EXPECTS(v < static_cast<graph::Vertex>(queues_.size()));
  down_[v] = false;
}

}  // namespace dg::traffic
