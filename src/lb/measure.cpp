#include "lb/measure.h"

#include <utility>

#include "stats/probes.h"

namespace dg::lb {

namespace {

sim::Round progress_of(LbSimulation& sim,
                       const std::vector<graph::Vertex>& senders,
                       graph::Vertex receiver, std::int64_t horizon_phases) {
  stats::FirstReceptionProbe probe(sim.network().size());
  sim.add_observer(&probe);
  sim.keep_busy(senders);
  for (std::int64_t p = 0; p < horizon_phases; ++p) {
    sim.run_phases(1);
    if (probe.first_reception(receiver) != 0) break;
  }
  return probe.first_reception(receiver);
}

}  // namespace

sim::Round progress_latency(const graph::DualGraph& g,
                            std::unique_ptr<sim::LinkScheduler> scheduler,
                            const LbParams& params,
                            const std::vector<graph::Vertex>& senders,
                            graph::Vertex receiver,
                            std::int64_t horizon_phases, std::uint64_t seed,
                            const sim::EngineConfig& config) {
  LbSimulation sim(g, std::move(scheduler), params, seed);
  sim.configure(config);
  const sim::Round latency =
      progress_of(sim, senders, receiver, horizon_phases);
  sim.export_telemetry();
  return latency;
}

sim::Round progress_latency(const graph::DualGraph& g,
                            std::unique_ptr<phys::ChannelModel> channel,
                            const LbParams& params,
                            const std::vector<graph::Vertex>& senders,
                            graph::Vertex receiver,
                            std::int64_t horizon_phases, std::uint64_t seed,
                            const sim::EngineConfig& config) {
  LbSimulation sim(g, std::move(channel), params, seed);
  sim.configure(config);
  const sim::Round latency =
      progress_of(sim, senders, receiver, horizon_phases);
  sim.export_telemetry();
  return latency;
}

FloodStats run_flood(LbSimulation& sim, graph::Vertex sender,
                     std::int64_t horizon_phases) {
  const std::size_t n = sim.network().size();
  stats::FirstReceptionProbe probe(n);
  stats::TrafficProbe traffic;
  sim.add_observer(&probe);
  sim.add_observer(&traffic);
  sim.keep_busy({sender});
  sim.run_phases(horizon_phases);

  FloodStats out;
  const auto horizon = static_cast<double>(sim.round());
  double progress_total = 0;
  for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(n); ++v) {
    if (v == sender) continue;
    const auto first = probe.first_reception(v);
    if (first != 0) out.reached_frac += 1;
    progress_total += first != 0 ? static_cast<double>(first) : horizon;
  }
  out.progress_rounds = progress_total / static_cast<double>(n - 1);
  out.reached_frac /= static_cast<double>(n - 1);
  out.receptions = static_cast<double>(traffic.receptions());
  double total = 0;
  for (const auto& rec : sim.checker().broadcasts()) {
    if (!rec.acked()) continue;
    total += static_cast<double>(rec.ack_round - rec.input_round);
    out.acked += 1;
  }
  out.ack_latency = out.acked != 0 ? total / out.acked : 0;
  return out;
}

}  // namespace dg::lb
