#include "lb/spec.h"

#include <algorithm>

#include "util/assert.h"

namespace dg::lb {

LbSpecChecker::LbSpecChecker(const graph::DualGraph& g,
                             std::vector<sim::ProcessId> ids,
                             const LbParams& params, bool record_details)
    : graph_(&g),
      ids_(std::move(ids)),
      params_(params),
      record_details_(record_details),
      active_(g.size()),
      streak_start_(g.size(), 0),
      active_until_(g.size(), -1),
      qualifying_reception_(g.size(), false),
      down_(g.size(), false),
      fault_touched_(g.size(), false),
      restab_pending_(g.size(), 0) {
  DG_EXPECTS(ids_.size() == g.size());
  for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(ids_.size()); ++v) {
    vertex_of_.emplace(ids_[v], v);
  }
}

void LbSpecChecker::on_bcast(graph::Vertex u, const sim::MessageId& m,
                             sim::Round round) {
  // Environment contract: no new bcast before the previous ack.
  DG_EXPECTS(!active_[u].has_value());
  ActiveEntry entry;
  entry.id = m;
  entry.input_round = round;
  entry.record_index = records_.size();
  // A broadcast born next to a crashed vertex lives its whole life inside a
  // fault window; its reliability tally belongs to the degradation ledger.
  if (down_count_ > 0) {
    if (down_[u]) entry.fault_overlap = true;
    for (graph::Vertex w : graph_->g_neighbors(u)) {
      if (down_[w]) {
        entry.fault_overlap = true;
        break;
      }
    }
  }
  active_[u] = entry;
  owner_of_[m] = u;
  // A bcast in the round right after the previous activity ended continues
  // the activity streak (the vertex is active in every round across the
  // seam); any gap starts a new streak here.
  if (active_until_[u] != round - 1) streak_start_[u] = round;
  ++report_.bcast_count;

  BroadcastRecord record;
  record.origin = u;
  record.id = m;
  record.input_round = round;
  records_.push_back(std::move(record));
}

void LbSpecChecker::on_abort(graph::Vertex u, const sim::MessageId& m,
                             sim::Round round) {
  auto& entry = active_[u];
  DG_EXPECTS(entry.has_value() && entry->id == m);
  records_[entry->record_index].abort_round = round;
  owner_of_.erase(m);
  // The abort takes effect at the input step of `round`: the node is no
  // longer actively broadcasting in that round, so the entry is dropped
  // immediately (before on_round_end evaluates activity) and the activity
  // streak ends with the previous round.
  active_until_[u] = round - 1;
  entry.reset();
}

void LbSpecChecker::on_crash(graph::Vertex u, sim::Round round) {
  (void)round;
  DG_EXPECTS(!down_[u]);
  faults_seen_ = true;
  ++ledger_.crashes;
  down_[u] = true;
  ++down_count_;
  restab_pending_[u] = 0;  // crashed again before re-stabilizing
  taint_neighborhood(u);
}

void LbSpecChecker::on_recover(graph::Vertex u, sim::Round round) {
  DG_EXPECTS(down_[u]);
  ++ledger_.recoveries;
  down_[u] = false;
  --down_count_;
  restab_pending_[u] = round;
  taint_neighborhood(u);
}

void LbSpecChecker::taint_neighborhood(graph::Vertex u) {
  fault_touched_[u] = true;
  if (active_[u].has_value()) active_[u]->fault_overlap = true;
  for (graph::Vertex w : graph_->g_neighbors(u)) {
    fault_touched_[w] = true;
    if (active_[w].has_value()) active_[w]->fault_overlap = true;
  }
}

void LbSpecChecker::on_ack(graph::Vertex vertex, const sim::MessageId& m,
                           sim::Round round) {
  ++report_.ack_count;
  ++acks_this_round_;
  auto& entry = active_[vertex];
  if (!entry.has_value() || !(entry->id == m) || entry->ack_round != 0) {
    // Ack without a matching outstanding bcast, or a duplicate ack.
    report_.timely_ack_ok = false;
    ++report_.violations;
    return;
  }
  const sim::Round latency = round - entry->input_round;
  if (latency > params_.t_ack_bound()) {
    report_.timely_ack_ok = false;
    ++report_.violations;
  }

  // Reliability: every G-neighbor of `vertex` must have produced its
  // recv(m) output at or before the ack round (recv outputs happen in the
  // reception step, acks in the output step, so equality is "before").
  auto& record = records_[entry->record_index];
  const auto& neighbors = graph_->g_neighbors(vertex);
  bool all_received = record.recv_rounds.size() >= neighbors.size();
  // Fault-free-window masking: a broadcast whose lifetime overlapped a
  // fault in its G-neighborhood cannot be held to the reliability bound
  // (a crashed neighbor hears nothing); its tally degrades gracefully
  // into the ledger instead.
  if (entry->fault_overlap) {
    ledger_.faulty_reliability.record(all_received);
  } else {
    report_.reliability.record(all_received);
  }

  record.ack_round = round;
  if (all_received && !neighbors.empty()) {
    sim::Round last = 0;
    for (const auto& [v, t] : record.recv_rounds) last = std::max(last, t);
    record.delivered_round = last;
  } else if (neighbors.empty()) {
    record.delivered_round = round;
  }
  if (!record_details_) {
    record.recv_rounds.clear();
  }

  owner_of_.erase(m);
  entry->ack_round = round;  // marks "acked in this round" for phase stats
  // The entry is retired at end of round (activity in the ack round still
  // counts toward the progress condition's notion of "active").
  retire_pending_.push_back(vertex);
  active_until_[vertex] = round;
}

void LbSpecChecker::on_recv(graph::Vertex vertex, const sim::MessageId& m,
                            std::uint64_t /*content*/, sim::Round round) {
  ++report_.recv_count;

  // Validity: some v in N_G'(vertex) must be actively broadcasting m now.
  const auto it = owner_of_.find(m);
  if (it == owner_of_.end()) {
    report_.validity_ok = false;
    ++report_.violations;
    return;
  }
  const graph::Vertex origin = it->second;
  const auto& entry = active_[origin];
  const bool origin_active = entry.has_value() && entry->id == m &&
                             entry->input_round <= round;
  const bool origin_is_gprime_neighbor =
      !require_gprime_adjacency_ || graph_->has_gprime_edge(origin, vertex);
  if (!origin_active || !origin_is_gprime_neighbor) {
    report_.validity_ok = false;
    ++report_.violations;
    return;
  }

  // Reliability bookkeeping: record the first recv round per G-neighbor.
  if (graph_->has_reliable_edge(origin, vertex)) {
    auto& record = records_[entry->record_index];
    record.recv_rounds.emplace(vertex, round);
  }
}

void LbSpecChecker::on_receive(sim::Round round, graph::Vertex u,
                               graph::Vertex from, const sim::Packet& packet) {
  // Re-stabilization clock: a recovered vertex counts as back on the air
  // at its first wire-level reception (seed or data).
  if (faults_seen_ && restab_pending_[u] != 0) {
    ledger_.restab_rounds_sum +=
        static_cast<std::uint64_t>(round - restab_pending_[u]);
    ++ledger_.restab_count;
    restab_pending_[u] = 0;
  }
  if (!packet.is_data()) return;
  ++report_.raw_receptions;
  // Progress event B^u_alpha: u receives a message m_v from a node v that is
  // actively broadcasting m_v in this round.
  const auto& entry = active_[from];
  if (entry.has_value() && entry->id == packet.data().id &&
      entry->input_round <= round) {
    qualifying_reception_[u] = true;
  }
}

bool LbSpecChecker::actively_broadcasting(graph::Vertex v,
                                          sim::Round round) const {
  const auto& entry = active_[v];
  return entry.has_value() && entry->input_round <= round &&
         (entry->ack_round == 0 || entry->ack_round >= round);
}

void LbSpecChecker::on_round_end(sim::Round round) {
  ++rounds_in_phase_;
  ++ledger_.rounds_observed;
  if (down_count_ > 0) {
    ++ledger_.fault_rounds;
    ledger_.acks_in_fault_rounds += acks_this_round_;
  }
  acks_this_round_ = 0;
  if (round % params_.t_prog_bound() == 0) {
    // Evaluated before retirement: an entry acked in the phase's final
    // round was active through the whole round, so it still counts.
    finish_phase(round);
  }
  // Retire entries acked this round (the vertex is inactive from the next
  // round on).
  for (graph::Vertex v : retire_pending_) {
    active_[v].reset();
  }
  retire_pending_.clear();
}

void LbSpecChecker::finish_phase(sim::Round phase_end_round) {
  DG_ASSERT(rounds_in_phase_ == params_.t_prog_bound());
  const sim::Round phase_start = phase_end_round - params_.t_prog_bound() + 1;
  // v was active in every round of the phase iff its entry is still alive
  // here and its activity *streak* predates the phase.  The streak (not the
  // entry's own input_round) is what makes back-to-back messages count:
  // an ack mid-phase followed immediately by a new bcast keeps the vertex
  // active in every round even though no single entry spans the phase.
  const auto fully_active = [&](graph::Vertex v) {
    return active_[v].has_value() && streak_start_[v] <= phase_start;
  };
  const auto n = static_cast<graph::Vertex>(graph_->size());
  for (graph::Vertex u = 0; u < n; ++u) {
    bool has_fully_active_neighbor = false;
    for (graph::Vertex v : graph_->g_neighbors(u)) {
      if (fully_active(v)) {
        has_fully_active_neighbor = true;
        break;
      }
    }
    if (has_fully_active_neighbor) {
      // A^u_alpha held; did B^u_alpha?  Windows touched by a fault at u or
      // a G-neighbor are not held to the bound -- they tally into the
      // degradation ledger instead of the spec report.
      if (faults_seen_ && fault_touched_[u]) {
        ledger_.faulty_progress.record(qualifying_reception_[u]);
      } else {
        report_.progress.record(qualifying_reception_[u]);
      }
    }
  }
  std::fill(qualifying_reception_.begin(), qualifying_reception_.end(), false);
  if (faults_seen_) {
    // Reset the per-phase taint, then re-seed it from vertices still down:
    // every phase overlapping a downtime is a fault window, not just the
    // phase the crash landed in.
    std::fill(fault_touched_.begin(), fault_touched_.end(), false);
    if (down_count_ > 0) {
      for (graph::Vertex v = 0; v < n; ++v) {
        if (down_[v]) taint_neighborhood(v);
      }
    }
  }
  rounds_in_phase_ = 0;
}

}  // namespace dg::lb
