#include "lb/simulation.h"

#include "util/assert.h"
#include "util/rng.h"

namespace dg::lb {

/// Forwards LbProcess outputs to the spec checker, the traffic injector
/// (latency/throughput ledger), and an optional extra listener (e.g. the
/// abstract MAC adapter).
class LbSimulation::Fanout final : public LbListener {
 public:
  explicit Fanout(LbSimulation& owner) : owner_(&owner) {}

  void on_ack(graph::Vertex vertex, const sim::MessageId& m,
              sim::Round round) override {
    owner_->checker_->on_ack(vertex, m, round);
    owner_->traffic_->on_ack(m, round);
    if (owner_->extra_ != nullptr) owner_->extra_->on_ack(vertex, m, round);
  }

  void on_recv(graph::Vertex vertex, const sim::MessageId& m,
               std::uint64_t content, sim::Round round) override {
    owner_->checker_->on_recv(vertex, m, content, round);
    owner_->traffic_->on_recv(m, round);
    if (owner_->extra_ != nullptr) {
      owner_->extra_->on_recv(vertex, m, content, round);
    }
  }

 private:
  LbSimulation* owner_;
};

/// The injector's view of this simulation: the busy bit and a
/// contract-checked bcast post (which also notifies the spec checker).
class LbSimulation::TrafficPort final : public traffic::LbPort {
 public:
  explicit TrafficPort(LbSimulation& owner) : owner_(&owner) {}

  bool busy(graph::Vertex v) const override { return owner_->busy(v); }
  sim::MessageId admit(graph::Vertex v, std::uint64_t content) override {
    return owner_->post_bcast(v, content);
  }

 private:
  LbSimulation* owner_;
};

LbSimulation::LbSimulation(const graph::DualGraph& g,
                           std::unique_ptr<sim::LinkScheduler> scheduler,
                           const LbParams& params, std::uint64_t master_seed)
    : LbSimulation(g, std::move(scheduler), nullptr, params, master_seed) {}

LbSimulation::LbSimulation(const graph::DualGraph& g,
                           std::unique_ptr<phys::ChannelModel> channel,
                           const LbParams& params, std::uint64_t master_seed)
    : LbSimulation(g, nullptr, std::move(channel), params, master_seed) {}

LbSimulation::LbSimulation(const graph::DualGraph& g,
                           std::unique_ptr<sim::LinkScheduler> scheduler,
                           std::unique_ptr<phys::ChannelModel> channel,
                           const LbParams& params, std::uint64_t master_seed)
    : graph_(&g),
      params_(params),
      scheduler_(std::move(scheduler)),
      channel_(std::move(channel)),
      ids_(sim::assign_ids(g.size(), derive_seed(master_seed, 0x1d5ULL))),
      fanout_(std::make_unique<Fanout>(*this)),
      checker_(std::make_unique<LbSpecChecker>(g, ids_, params)),
      traffic_port_(std::make_unique<TrafficPort>(*this)),
      traffic_(std::make_unique<traffic::Injector>(g.size(),
                                                  *traffic_port_)) {
  DG_EXPECTS((scheduler_ != nullptr) != (channel_ != nullptr));
  std::vector<std::unique_ptr<sim::Process>> processes;
  processes.reserve(g.size());
  for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(g.size()); ++v) {
    processes.push_back(
        std::make_unique<LbProcess>(params_, ids_[v], v, fanout_.get()));
  }
  engine_ = channel_ != nullptr
                ? std::make_unique<sim::Engine>(g, *channel_,
                                                std::move(processes),
                                                master_seed)
                : std::make_unique<sim::Engine>(g, *scheduler_,
                                                std::move(processes),
                                                master_seed);
  // A physical channel's ground truth may deliver beyond the declared G';
  // grade validity accordingly (see LbSpecChecker docs).
  if (channel_ != nullptr) {
    checker_->set_require_gprime_adjacency(channel_->respects_dual_graph());
  }
  engine_->add_observer(checker_.get());
}

LbSimulation::~LbSimulation() = default;

LbProcess& LbSimulation::process(graph::Vertex v) {
  auto* p = dynamic_cast<LbProcess*>(&engine_->process(v));
  DG_ASSERT(p != nullptr);
  return *p;
}

sim::MessageId LbSimulation::post_bcast(graph::Vertex v,
                                        std::uint64_t content) {
  const sim::MessageId m = process(v).post_bcast(content);
  checker_->on_bcast(v, m, engine_->round() + 1);
  return m;
}

std::optional<sim::MessageId> LbSimulation::post_abort(graph::Vertex v) {
  const auto aborted = process(v).abort();
  if (aborted.has_value()) {
    checker_->on_abort(v, *aborted, engine_->round() + 1);
    traffic_->on_abort(*aborted, engine_->round() + 1);
  }
  return aborted;
}

bool LbSimulation::busy(graph::Vertex v) const {
  const auto* p =
      dynamic_cast<const LbProcess*>(&engine_->process(v));
  DG_ASSERT(p != nullptr);
  return p->busy();
}

void LbSimulation::keep_busy(const std::vector<graph::Vertex>& vertices) {
  add_traffic(std::make_unique<traffic::SaturateSource>(vertices));
}

void LbSimulation::run_round() {
  // Environment input step: traffic sources offer + the admission queues
  // drain, then the custom hook (both deterministic given the execution so
  // far).
  traffic_->step(engine_->round() + 1);
  if (environment_) environment_(*this, engine_->round() + 1);
  engine_->run_round();
}

void LbSimulation::run_rounds(std::int64_t count) {
  DG_EXPECTS(count >= 0);
  for (std::int64_t i = 0; i < count; ++i) run_round();
}

void LbSimulation::run_phases(std::int64_t count) {
  run_rounds(count * params_.phase_length());
}

}  // namespace dg::lb
