#include "lb/simulation.h"

#include "util/assert.h"
#include "util/rng.h"

namespace dg::lb {

/// Forwards LbProcess outputs to the spec checker, the traffic injector
/// (latency/throughput ledger), and an optional extra listener (e.g. the
/// abstract MAC adapter).
///
/// Under sharded rounds the forwarding targets are not concurrent-safe, so
/// the Fanout grows a buffered mode: each vertex parks its (at most one)
/// recv and ack of the round in a per-vertex slot -- disjoint writes, no
/// synchronization -- and the engine's serial RoundHooks checkpoints flush
/// the slots in ascending vertex order.  The serial loop delivers recvs in
/// ascending receiver order during the reception phase and acks in
/// ascending vertex order during the output phase, so the flushed call
/// sequence is byte-for-byte the serial one; downstream state (checker
/// report, traffic ledger) cannot tell the modes apart.
class LbSimulation::Fanout final : public LbListener, public sim::RoundHooks {
 public:
  explicit Fanout(LbSimulation& owner) : owner_(&owner) {}

  /// Rounds 1-based, so round == 0 marks an empty slot.
  void set_buffered(bool buffered, std::size_t n) {
    buffered_ = buffered;
    recv_.assign(buffered ? n : 0, RecvSlot{});
    ack_.assign(buffered ? n : 0, AckSlot{});
  }

  bool concurrent_safe() const override { return buffered_; }

  void on_ack(graph::Vertex vertex, const sim::MessageId& m,
              sim::Round round) override {
    if (buffered_) {
      ack_[vertex] = AckSlot{m, round};
      return;
    }
    forward_ack(vertex, m, round);
  }

  void on_recv(graph::Vertex vertex, const sim::MessageId& m,
               std::uint64_t content, sim::Round round) override {
    if (buffered_) {
      recv_[vertex] = RecvSlot{m, content, round};
      return;
    }
    forward_recv(vertex, m, content, round);
  }

  // sim::RoundHooks (fired serially by both engine round loops):
  void after_receive_phase(sim::Round round) override {
    (void)round;
    if (!buffered_) return;
    for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(recv_.size());
         ++v) {
      RecvSlot& slot = recv_[v];
      if (slot.round == 0) continue;
      forward_recv(v, slot.m, slot.content, slot.round);
      slot.round = 0;
    }
  }

  void after_output_phase(sim::Round round) override {
    (void)round;
    if (!buffered_) return;
    for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(ack_.size());
         ++v) {
      AckSlot& slot = ack_[v];
      if (slot.round == 0) continue;
      forward_ack(v, slot.m, slot.round);
      slot.round = 0;
    }
  }

 private:
  struct RecvSlot {
    sim::MessageId m;
    std::uint64_t content = 0;
    sim::Round round = 0;  // 0 = empty
  };
  struct AckSlot {
    sim::MessageId m;
    sim::Round round = 0;  // 0 = empty
  };

  void forward_ack(graph::Vertex vertex, const sim::MessageId& m,
                   sim::Round round) {
    owner_->checker_->on_ack(vertex, m, round);
    owner_->traffic_->on_ack(m, round);
    // Completed-broadcast progress feed for adaptive fault plans (the
    // k-crash adversary targets the highest-progress vertices).  Runs on
    // the serial path in both fan-out modes, so plans see the identical
    // ascending-vertex order at any thread count.
    if (owner_->fault_plan_ != nullptr) {
      owner_->fault_plan_->note_progress(vertex);
    }
    if (owner_->extra_ != nullptr) owner_->extra_->on_ack(vertex, m, round);
  }

  void forward_recv(graph::Vertex vertex, const sim::MessageId& m,
                    std::uint64_t content, sim::Round round) {
    owner_->checker_->on_recv(vertex, m, content, round);
    owner_->traffic_->on_recv(m, round);
    if (owner_->extra_ != nullptr) {
      owner_->extra_->on_recv(vertex, m, content, round);
    }
  }

  LbSimulation* owner_;
  bool buffered_ = false;
  std::vector<RecvSlot> recv_;
  std::vector<AckSlot> ack_;
};

/// Routes the engine's fault events into the rest of the stack, preserving
/// the fault/plan.h ordering contract: on a crash this listener fires
/// *before* LbProcess::on_crash, so the in-flight broadcast is still
/// intact and can be aborted through the normal accounting path (spec
/// checker on_abort + traffic crash-requeue); on a recovery it fires
/// *after* LbProcess::on_recover, so admission resumes against a
/// re-initialized process.
class LbSimulation::FaultBridge final : public fault::FaultListener {
 public:
  explicit FaultBridge(LbSimulation& owner) : owner_(&owner) {}

  void on_crash(sim::Round round, graph::Vertex v) override {
    const auto aborted = owner_->process(v).abort();
    if (aborted.has_value()) {
      owner_->checker_->on_abort(v, *aborted, round);
    }
    // The injector both accounts the crash-abort (if the in-flight message
    // was one of its admissions) and re-queues it for after recovery.
    owner_->traffic_->on_crash(v, round);
    owner_->checker_->on_crash(v, round);
  }

  void on_recover(sim::Round round, graph::Vertex v) override {
    owner_->traffic_->on_recover(v, round);
    owner_->checker_->on_recover(v, round);
  }

 private:
  LbSimulation* owner_;
};

/// The injector's view of this simulation: the busy bit and a
/// contract-checked bcast post (which also notifies the spec checker).
class LbSimulation::TrafficPort final : public traffic::LbPort {
 public:
  explicit TrafficPort(LbSimulation& owner) : owner_(&owner) {}

  bool busy(graph::Vertex v) const override { return owner_->busy(v); }
  sim::MessageId admit(graph::Vertex v, std::uint64_t content) override {
    return owner_->post_bcast(v, content);
  }

 private:
  LbSimulation* owner_;
};

LbSimulation::LbSimulation(const graph::DualGraph& g,
                           std::unique_ptr<sim::LinkScheduler> scheduler,
                           const LbParams& params, std::uint64_t master_seed)
    : LbSimulation(g, std::move(scheduler), nullptr, params, master_seed) {}

LbSimulation::LbSimulation(const graph::DualGraph& g,
                           std::unique_ptr<phys::ChannelModel> channel,
                           const LbParams& params, std::uint64_t master_seed)
    : LbSimulation(g, nullptr, std::move(channel), params, master_seed) {}

LbSimulation::LbSimulation(const graph::DualGraph& g,
                           std::unique_ptr<sim::LinkScheduler> scheduler,
                           std::unique_ptr<phys::ChannelModel> channel,
                           const LbParams& params, std::uint64_t master_seed)
    : graph_(&g),
      params_(params),
      scheduler_(std::move(scheduler)),
      channel_(std::move(channel)),
      ids_(sim::assign_ids(g.size(), derive_seed(master_seed, 0x1d5ULL))),
      fanout_(std::make_unique<Fanout>(*this)),
      checker_(std::make_unique<LbSpecChecker>(g, ids_, params)),
      traffic_port_(std::make_unique<TrafficPort>(*this)),
      traffic_(std::make_unique<traffic::Injector>(g.size(),
                                                  *traffic_port_)) {
  DG_EXPECTS((scheduler_ != nullptr) != (channel_ != nullptr));
  std::vector<std::unique_ptr<sim::Process>> processes;
  processes.reserve(g.size());
  for (graph::Vertex v = 0; v < static_cast<graph::Vertex>(g.size()); ++v) {
    processes.push_back(
        std::make_unique<LbProcess>(params_, ids_[v], v, fanout_.get()));
  }
  engine_ = channel_ != nullptr
                ? std::make_unique<sim::Engine>(g, *channel_,
                                                std::move(processes),
                                                master_seed)
                : std::make_unique<sim::Engine>(g, *scheduler_,
                                                std::move(processes),
                                                master_seed);
  // A physical channel's ground truth may deliver beyond the declared G';
  // grade validity accordingly (see LbSpecChecker docs).
  if (channel_ != nullptr) {
    checker_->set_require_gprime_adjacency(channel_->respects_dual_graph());
  }
  engine_->add_observer(checker_.get());
  // Honor the DG_ROUND_THREADS default the engine picked up at init: the
  // setter path also enables the buffered fan-out (without which the
  // LbProcesses would withhold shard consent and every round would fall
  // back serial).
  set_round_threads(engine_->round_threads());
}

void LbSimulation::set_fault_plan(fault::FaultPlan* plan) {
  fault_plan_ = plan;
  if (plan != nullptr && fault_bridge_ == nullptr) {
    fault_bridge_ = std::make_unique<FaultBridge>(*this);
  }
  engine_->set_fault_plan(plan, plan != nullptr ? fault_bridge_.get()
                                                : nullptr);
}

void LbSimulation::set_round_threads(std::size_t threads) {
  const bool shard = threads > 1;
  fanout_->set_buffered(shard, graph_->size());
  engine_->set_round_hooks(shard ? fanout_.get() : nullptr);
  // Last: the engine re-polls shard_safe() here, and the processes' answer
  // depends on the fan-out mode just configured.
  engine_->set_round_threads(threads);
}

void LbSimulation::configure(const sim::EngineConfig& config) {
  if (config.round_threads != 0) set_round_threads(config.round_threads);
  if (config.has_sparse_rounds) {
    engine_->set_sparse_rounds(config.sparse_rounds);
  }
  if (config.has_fault_plan) {
    // The wrapper owns the listener side (its FaultBridge routes engine
    // fault events through the abort/checker/traffic accounting); a
    // caller-supplied listener would silently bypass all of that.
    DG_EXPECTS(config.fault_listener == nullptr);
    set_fault_plan(config.fault_plan);
  }
  for (const sim::SpliceSpec& spec : config.splices) {
    const std::string err = engine_->splice_stage(spec);
    DG_EXPECTS(err.empty());
  }
  if (config.has_telemetry) {
    set_telemetry(config.registry, config.trace_sink);
  }
}

LbSimulation::~LbSimulation() = default;

LbProcess& LbSimulation::process(graph::Vertex v) {
  auto* p = dynamic_cast<LbProcess*>(&engine_->process(v));
  DG_ASSERT(p != nullptr);
  return *p;
}

sim::MessageId LbSimulation::post_bcast(graph::Vertex v,
                                        std::uint64_t content) {
  const sim::MessageId m = process(v).post_bcast(content);
  checker_->on_bcast(v, m, engine_->round() + 1);
  return m;
}

std::optional<sim::MessageId> LbSimulation::post_abort(graph::Vertex v) {
  const auto aborted = process(v).abort();
  if (aborted.has_value()) {
    checker_->on_abort(v, *aborted, engine_->round() + 1);
    traffic_->on_abort(*aborted, engine_->round() + 1);
  }
  return aborted;
}

bool LbSimulation::busy(graph::Vertex v) const {
  const auto* p =
      dynamic_cast<const LbProcess*>(&engine_->process(v));
  DG_ASSERT(p != nullptr);
  return p->busy();
}

void LbSimulation::keep_busy(const std::vector<graph::Vertex>& vertices) {
  add_traffic(std::make_unique<traffic::SaturateSource>(vertices));
}

void LbSimulation::set_telemetry(obs::Registry* registry,
                                 obs::TraceSink* trace) {
  obs_registry_ = registry;
  obs_trace_ = registry != nullptr ? trace : nullptr;
  engine_->set_telemetry(registry, obs_trace_);
}

void LbSimulation::export_telemetry() {
  if (obs_registry_ == nullptr) return;
  using obs::Domain;
  obs::Registry& reg = *obs_registry_;

  // Traffic ledger: logical to the last byte -- the injector's counters
  // are pure functions of the execution.
  const traffic::TrafficStats& ts = traffic_->stats();
  reg.counter("traffic.offered", Domain::kLogical) += ts.offered;
  reg.counter("traffic.enqueued", Domain::kLogical) += ts.enqueued;
  reg.counter("traffic.dropped", Domain::kLogical) += ts.dropped;
  reg.counter("traffic.admitted", Domain::kLogical) += ts.admitted;
  reg.counter("traffic.acked", Domain::kLogical) += ts.acked;
  reg.counter("traffic.aborted", Domain::kLogical) += ts.aborted;
  reg.counter("traffic.first_recvs", Domain::kLogical) += ts.first_recvs;
  reg.counter("traffic.crash_requeues", Domain::kLogical) +=
      ts.crash_requeues;
  reg.counter("traffic.readmitted", Domain::kLogical) += ts.readmitted;
  reg.counter("traffic.wait_rounds", Domain::kLogical) += ts.wait_sum;
  reg.counter("traffic.ack_latency_rounds", Domain::kLogical) +=
      ts.ack_latency_sum;
  reg.counter("traffic.recv_latency_rounds", Domain::kLogical) +=
      ts.recv_latency_sum;

  // Spec checker + degradation ledger (the paper's Section 4 bounds).
  const LbSpecReport& rep = checker_->report();
  reg.counter("lb.bcasts", Domain::kLogical) += rep.bcast_count;
  reg.counter("lb.acks", Domain::kLogical) += rep.ack_count;
  reg.counter("lb.recvs", Domain::kLogical) += rep.recv_count;
  reg.counter("lb.violations", Domain::kLogical) += rep.violations;
  reg.counter("lb.progress.trials", Domain::kLogical) +=
      rep.progress.trials();
  reg.counter("lb.progress.successes", Domain::kLogical) +=
      rep.progress.successes();
  reg.counter("lb.reliability.trials", Domain::kLogical) +=
      rep.reliability.trials();
  reg.counter("lb.reliability.successes", Domain::kLogical) +=
      rep.reliability.successes();
  const DegradationLedger& led = checker_->ledger();
  reg.counter("lb.fault.crashes", Domain::kLogical) += led.crashes;
  reg.counter("lb.fault.recoveries", Domain::kLogical) += led.recoveries;
  reg.counter("lb.fault.rounds", Domain::kLogical) += led.fault_rounds;
  reg.counter("lb.fault.restab_count", Domain::kLogical) +=
      led.restab_count;
  reg.counter("lb.fault.restab_rounds", Domain::kLogical) +=
      led.restab_rounds_sum;

  // Ack-latency histogram over the traffic ledger, in enqueue order (a
  // deterministic iteration; the sum of recorded values equals
  // traffic.ack_latency_rounds).
  obs::Registry::Histogram& ack_hist = reg.histogram(
      "traffic.ack_latency", Domain::kLogical,
      {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096});
  for (const traffic::MessageRecord& m : traffic_->messages()) {
    if (m.acked()) {
      ack_hist.record(static_cast<double>(m.ack_round - m.enqueue_round));
    }
    if (obs_trace_ != nullptr) {
      obs_trace_->message_span(
          m.vertex, m.content, static_cast<std::int64_t>(m.enqueue_round),
          static_cast<std::int64_t>(m.admit_round),
          static_cast<std::int64_t>(m.first_recv_round),
          static_cast<std::int64_t>(m.ack_round),
          static_cast<std::int64_t>(m.abort_round));
    }
  }
}

void LbSimulation::run_round() {
  // Environment input step: traffic sources offer + the admission queues
  // drain, then the custom hook (both deterministic given the execution so
  // far).
  traffic_->step(engine_->round() + 1);
  if (environment_) environment_(*this, engine_->round() + 1);
  engine_->run_round();
}

void LbSimulation::run_rounds(std::int64_t count) {
  DG_EXPECTS(count >= 0);
  for (std::int64_t i = 0; i < count; ++i) run_round();
}

void LbSimulation::run_phases(std::int64_t count) {
  run_rounds(count * params_.phase_length());
}

}  // namespace dg::lb
