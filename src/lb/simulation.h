// LbSimulation: convenience wrapper wiring a dual graph, an oblivious link
// scheduler, one LbProcess per vertex, the LB spec checker, and a traffic
// environment into a runnable system.
//
// The environment model follows Section 4.1: a deterministic automaton that
// consumes ack outputs and produces bcast inputs, subject to the contract
// (unique messages; no new bcast at u before u's previous ack).  The
// environment side is the pluggable traffic subsystem (src/traffic/): any
// number of TrafficSources feed a per-node admission queue (the
// traffic::Injector) that posts bcast inputs whenever the service is idle
// and records end-to-end latency/throughput statistics.  The historical
// APIs remain as thin shims: keep_busy() attaches a SaturateSource, and
// post_bcast()/set_environment() still drive inputs directly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/plan.h"
#include "graph/dual_graph.h"
#include "lb/lb_alg.h"
#include "obs/registry.h"
#include "obs/trace_sink.h"
#include "lb/params.h"
#include "lb/spec.h"
#include "phys/channel.h"
#include "sim/engine.h"
#include "sim/scheduler.h"
#include "traffic/injector.h"

namespace dg::lb {

class LbSimulation {
 public:
  /// The graph must outlive the simulation; the scheduler is owned.
  /// Reception follows the Section 2 dual-graph rule under the scheduler.
  LbSimulation(const graph::DualGraph& g,
               std::unique_ptr<sim::LinkScheduler> scheduler,
               const LbParams& params, std::uint64_t master_seed);

  /// Same stack, but reception is decided by an explicit channel model
  /// (e.g. phys::SinrChannel ground truth); the channel is owned.
  LbSimulation(const graph::DualGraph& g,
               std::unique_ptr<phys::ChannelModel> channel,
               const LbParams& params, std::uint64_t master_seed);

  ~LbSimulation();  // out of line: Fanout is incomplete here

  // ---- environment-side controls ----

  /// Posts a bcast(m) input at vertex v, delivered at the start of the next
  /// round.  Contract-checked (asserts if v is busy).  Returns the message.
  /// Bypasses the traffic admission queue -- direct environment access.
  sim::MessageId post_bcast(graph::Vertex v, std::uint64_t content);

  /// Posts an abort input at vertex v (abstract MAC extension): cancels the
  /// outstanding broadcast, if any, effective from the next round.  Returns
  /// the aborted message id, if one existed.  Messages still queued in the
  /// traffic injector are unaffected (the next one is admitted once the
  /// abort frees the service).
  std::optional<sim::MessageId> post_abort(graph::Vertex v);

  bool busy(graph::Vertex v) const;

  /// Attaches a traffic source; sources step each round in attach order.
  void add_traffic(std::unique_ptr<traffic::TrafficSource> source) {
    traffic_->add_source(std::move(source));
  }

  /// The admission layer: queue state, per-message records, TrafficStats.
  traffic::Injector& traffic() noexcept { return *traffic_; }
  const traffic::Injector& traffic() const noexcept { return *traffic_; }

  /// Registers vertices the environment keeps saturated: whenever one is
  /// idle between rounds, a fresh bcast is posted automatically.  Shim for
  /// add_traffic(SaturateSource); behavior (contents, rounds) is
  /// bit-identical to the historical hard-wired loop.
  void keep_busy(const std::vector<graph::Vertex>& vertices);

  /// Arbitrary deterministic environment hook, invoked before every round
  /// with the round about to execute (after the traffic sources step).
  void set_environment(
      std::function<void(LbSimulation&, sim::Round next_round)> env) {
    environment_ = std::move(env);
  }

  /// Installs a crash/recover schedule (see fault/plan.h); the plan must
  /// outlive the simulation and is bound to this graph + master seed.  The
  /// wrapper bridges the engine's fault events to the whole stack: a crash
  /// aborts the vertex's in-flight broadcast through the usual abort
  /// accounting (spec checker + traffic crash-requeue), then reports the
  /// crash to the checker's degradation ledger; a recovery notifies the
  /// injector (admission resumes) and the checker (re-stabilization timer).
  /// Ack outputs additionally feed FaultPlan::note_progress, so the k-crash
  /// adversary can target the highest-progress vertices.  Pass nullptr to
  /// detach.
  void set_fault_plan(fault::FaultPlan* plan);

  // ---- execution ----

  void run_round();
  void run_rounds(std::int64_t count);
  /// Runs `count` whole LBAlg phases (each params().phase_length() rounds).
  void run_phases(std::int64_t count);

  /// Caps the engine's per-round thread budget and switches the listener
  /// fan-out accordingly: with threads > 1 the Fanout buffers per-vertex
  /// recv/ack callbacks during the parallel phases and flushes them at the
  /// serial between-phase checkpoints, in ascending vertex order -- the
  /// exact call sequence of the serial loop, so checker reports, traffic
  /// ledgers and extra listeners are byte-identical at any thread count.
  /// Constructed simulations start at sim::Engine::default_round_threads()
  /// (the DG_ROUND_THREADS environment knob).
  void set_round_threads(std::size_t threads);

  /// Applies a sim::EngineConfig through the wrapper-aware paths: the
  /// thread cap goes through set_round_threads (fan-out mode + hooks), a
  /// fault plan through set_fault_plan (the wrapper supplies its own
  /// FaultBridge listener -- the config must not carry one), splices
  /// through sim::Engine::splice_stage, and telemetry through
  /// set_telemetry.  Each piece applies only if set, so a default
  /// EngineConfig is a no-op.
  void configure(const sim::EngineConfig& config);

  // ---- access ----

  sim::Round round() const noexcept { return engine_->round(); }
  const LbParams& params() const noexcept { return params_; }
  const graph::DualGraph& network() const noexcept { return *graph_; }
  const std::vector<sim::ProcessId>& ids() const noexcept { return ids_; }

  LbProcess& process(graph::Vertex v);
  const LbSpecChecker& checker() const noexcept { return *checker_; }
  const LbSpecReport& report() const noexcept { return checker_->report(); }
  const DegradationLedger& ledger() const noexcept {
    return checker_->ledger();
  }
  sim::Engine& engine() noexcept { return *engine_; }

  /// Extra listener for service outputs (e.g. the abstract MAC adapter);
  /// may be set once, before running.
  void set_extra_listener(LbListener* listener) { extra_ = listener; }

  /// Extra engine observer (bench instrumentation).
  void add_observer(sim::Observer* observer) {
    engine_->add_observer(observer);
  }

  // ---- telemetry (src/obs/) ----

  /// Installs telemetry before the run (both must outlive the simulation;
  /// nullptr to remove).  Forwards to the engine -- per-round logical
  /// counters, phase timing, fault instants -- and arms export_telemetry()
  /// for the wrapper-level aggregates.
  void set_telemetry(obs::Registry* registry,
                     obs::TraceSink* trace = nullptr);

  /// Exports the wrapper-level telemetry accumulated by the run: traffic
  /// ledger counters, spec-checker tallies and the degradation ledger into
  /// the registry (all logical), and one lifecycle span per traffic
  /// message into the sink.  Call exactly ONCE, after the run -- calling
  /// it twice would double-count the aggregates.
  void export_telemetry();

 private:
  class Fanout;       // forwards process outputs to checker + listeners
  class TrafficPort;  // adapts this simulation to traffic::LbPort
  class FaultBridge;  // routes engine fault events to checker + traffic

  /// Shared constructor body: exactly one of scheduler/channel is set.
  LbSimulation(const graph::DualGraph& g,
               std::unique_ptr<sim::LinkScheduler> scheduler,
               std::unique_ptr<phys::ChannelModel> channel,
               const LbParams& params, std::uint64_t master_seed);

  const graph::DualGraph* graph_;
  LbParams params_;
  std::unique_ptr<sim::LinkScheduler> scheduler_;
  std::unique_ptr<phys::ChannelModel> channel_;
  std::vector<sim::ProcessId> ids_;
  std::unique_ptr<Fanout> fanout_;
  std::unique_ptr<LbSpecChecker> checker_;
  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<TrafficPort> traffic_port_;
  std::unique_ptr<traffic::Injector> traffic_;
  std::unique_ptr<FaultBridge> fault_bridge_;
  fault::FaultPlan* fault_plan_ = nullptr;
  std::function<void(LbSimulation&, sim::Round)> environment_;
  LbListener* extra_ = nullptr;
  obs::Registry* obs_registry_ = nullptr;
  obs::TraceSink* obs_trace_ = nullptr;
};

}  // namespace dg::lb
