// LbSimulation: convenience wrapper wiring a dual graph, an oblivious link
// scheduler, one LbProcess per vertex, the LB spec checker, and a
// deterministic environment into a runnable system.
//
// The environment model follows Section 4.1: a deterministic automaton that
// consumes ack outputs and produces bcast inputs, subject to the contract
// (unique messages; no new bcast at u before u's previous ack).  Two
// standard environments cover the paper's experiments: a script of
// (round, vertex) posts, and a "saturating" set of vertices kept busy
// forever (the workload behind the progress/acknowledgement bounds).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "graph/dual_graph.h"
#include "lb/lb_alg.h"
#include "lb/params.h"
#include "lb/spec.h"
#include "phys/channel.h"
#include "sim/engine.h"
#include "sim/scheduler.h"

namespace dg::lb {

class LbSimulation {
 public:
  /// The graph must outlive the simulation; the scheduler is owned.
  /// Reception follows the Section 2 dual-graph rule under the scheduler.
  LbSimulation(const graph::DualGraph& g,
               std::unique_ptr<sim::LinkScheduler> scheduler,
               const LbParams& params, std::uint64_t master_seed);

  /// Same stack, but reception is decided by an explicit channel model
  /// (e.g. phys::SinrChannel ground truth); the channel is owned.
  LbSimulation(const graph::DualGraph& g,
               std::unique_ptr<phys::ChannelModel> channel,
               const LbParams& params, std::uint64_t master_seed);

  ~LbSimulation();  // out of line: Fanout is incomplete here

  // ---- environment-side controls ----

  /// Posts a bcast(m) input at vertex v, delivered at the start of the next
  /// round.  Contract-checked (asserts if v is busy).  Returns the message.
  sim::MessageId post_bcast(graph::Vertex v, std::uint64_t content);

  /// Posts an abort input at vertex v (abstract MAC extension): cancels the
  /// outstanding broadcast, if any, effective from the next round.  Returns
  /// the aborted message id, if one existed.
  std::optional<sim::MessageId> post_abort(graph::Vertex v);

  bool busy(graph::Vertex v) const;

  /// Registers vertices the environment keeps saturated: whenever one is
  /// idle between rounds, a fresh bcast is posted automatically.
  void keep_busy(const std::vector<graph::Vertex>& vertices);

  /// Arbitrary deterministic environment hook, invoked before every round
  /// with the round about to execute.
  void set_environment(
      std::function<void(LbSimulation&, sim::Round next_round)> env) {
    environment_ = std::move(env);
  }

  // ---- execution ----

  void run_round();
  void run_rounds(std::int64_t count);
  /// Runs `count` whole LBAlg phases (each params().phase_length() rounds).
  void run_phases(std::int64_t count);

  // ---- access ----

  sim::Round round() const noexcept { return engine_->round(); }
  const LbParams& params() const noexcept { return params_; }
  const graph::DualGraph& network() const noexcept { return *graph_; }
  const std::vector<sim::ProcessId>& ids() const noexcept { return ids_; }

  LbProcess& process(graph::Vertex v);
  const LbSpecChecker& checker() const noexcept { return *checker_; }
  const LbSpecReport& report() const noexcept { return checker_->report(); }
  sim::Engine& engine() noexcept { return *engine_; }

  /// Extra listener for service outputs (e.g. the abstract MAC adapter);
  /// may be set once, before running.
  void set_extra_listener(LbListener* listener) { extra_ = listener; }

  /// Extra engine observer (bench instrumentation).
  void add_observer(sim::Observer* observer) {
    engine_->add_observer(observer);
  }

 private:
  class Fanout;  // forwards process outputs to checker + extra listener

  /// Shared constructor body: exactly one of scheduler/channel is set.
  LbSimulation(const graph::DualGraph& g,
               std::unique_ptr<sim::LinkScheduler> scheduler,
               std::unique_ptr<phys::ChannelModel> channel,
               const LbParams& params, std::uint64_t master_seed);

  const graph::DualGraph* graph_;
  LbParams params_;
  std::unique_ptr<sim::LinkScheduler> scheduler_;
  std::unique_ptr<phys::ChannelModel> channel_;
  std::vector<sim::ProcessId> ids_;
  std::unique_ptr<Fanout> fanout_;
  std::unique_ptr<LbSpecChecker> checker_;
  std::unique_ptr<sim::Engine> engine_;
  std::vector<graph::Vertex> saturated_;
  std::vector<std::uint64_t> content_counter_;
  std::function<void(LbSimulation&, sim::Round)> environment_;
  LbListener* extra_ = nullptr;
};

}  // namespace dg::lb
