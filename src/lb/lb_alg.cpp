#include "lb/lb_alg.h"

#include <cmath>

#include "util/assert.h"

namespace dg::lb {

LbProcess::LbProcess(const LbParams& params, sim::ProcessId id,
                     graph::Vertex vertex, LbListener* listener)
    : sim::Process(id),
      params_(params),
      vertex_(vertex),
      listener_(listener),
      group_len_(params.group_length()) {
  DG_EXPECTS(params.phases_per_seed >= 1);
}

sim::MessageId LbProcess::post_bcast(std::uint64_t content) {
  // Environment contract (Section 4.1): one outstanding bcast at a time.
  DG_EXPECTS(!busy());
  const sim::MessageId m{id(), ++next_seq_};
  pending_ = ActiveMessage{m, content, params_.t_ack_phases};
  return m;
}

std::optional<sim::MessageId> LbProcess::abort() {
  std::optional<sim::MessageId> aborted;
  if (current_.has_value()) {
    aborted = current_->id;
    current_.reset();
  } else if (pending_.has_value()) {
    aborted = pending_->id;
    pending_.reset();
  }
  return aborted;
}

void LbProcess::on_crash(sim::Round round) {
  (void)round;
  // The wrapper's FaultListener aborts any in-flight broadcast before this
  // fires (see fault/plan.h ordering); whatever is left is protocol state a
  // dead node cannot keep.
  pending_.reset();
  current_.reset();
  preamble_.reset();
  phase_seed_.reset();
  seed_bits_.reset();
}

void LbProcess::on_recover(sim::Round round) {
  // Re-synchronize the round cursor to the network-wide group layout (all
  // live nodes are at position (t-1) mod group_len; transmit() will advance
  // onto this round's position), then stay passive until the next group
  // start: the node missed this group's SeedAlg preamble, so it has no
  // group seed to participate with.
  const std::int64_t p = (round - 1) % group_len_;  // this round's position
  pos_in_group_ = p - 1;
  seg_round_ = p - 1 < params_.t_s
                   ? -1
                   : (p - 1 - params_.t_s) % params_.t_prog;
  phase_boundary_now_ = false;
  segment_end_now_ = false;
  resync_ = true;
}

std::int64_t LbProcess::silent_steps(std::int64_t k) {
  if (k > 0) {
    // Batched catch-up: k promised-silent rounds completed unstepped.  The
    // closed form lands the cursor exactly where k calls of
    // advance_round_position() would have; the promise below never spans a
    // group start or a segment boundary, so no begin_group / promotion /
    // seed-commit work can fall inside the jump.
    pos_in_group_ = (pos_in_group_ + k) % group_len_;
    seg_round_ = pos_in_group_ < params_.t_s
                     ? -1
                     : (pos_in_group_ - params_.t_s) % params_.t_prog;
    phase_boundary_now_ = pos_in_group_ == 0 ||
                          (pos_in_group_ > params_.t_s && seg_round_ == 0);
    segment_end_now_ = seg_round_ == params_.t_prog - 1;
  }

  // A recovered node idles -- no transmissions, receptions dropped, no
  // coins -- until the next group start hands it a fresh preamble.
  if (resync_) return group_len_ - 1 - pos_in_group_;

  // Receiving-state body rounds are silent: transmit() returns nullopt
  // without drawing coins, receive() ignores null, and the segment-end ack
  // countdown only runs for senders.  The window ends just before the next
  // segment boundary so a pending bcast posted mid-window is promoted --
  // and the next seed committed -- by a real transmit() call, exactly as
  // on the dense path.  Preamble and sending-state rounds consume
  // randomness every round, so they never park.
  if (seg_round_ < 0 || current_.has_value() || !phase_seed_.has_value()) {
    return 0;
  }
  return params_.t_prog - 1 - seg_round_;
}

void LbProcess::begin_group(sim::RoundContext& ctx) {
  // Every node runs SeedAlg at the start of every group, in either state.
  preamble_.emplace(params_.seed, id(), ctx.rng());
  phase_seed_.reset();
  seed_bits_.reset();
}

std::optional<sim::Packet> LbProcess::transmit(sim::RoundContext& ctx) {
  advance_round_position();

  // A freshly recovered node idles until the next group start (it holds no
  // group seed); a pending bcast input waits with it.
  if (resync_) {
    if (pos_in_group_ != 0) return std::nullopt;
    resync_ = false;
  }

  if (pos_in_group_ == 0) begin_group(ctx);

  // Promote a pending message at a phase boundary (a bcast received
  // mid-phase waits until here; the paper's "beginning of the next phase").
  if (phase_boundary_now_ && !current_.has_value() && pending_.has_value()) {
    current_ = pending_;
    pending_.reset();
  }

  if (in_preamble_now()) {
    // The decision may still arrive via receive() in the final preamble
    // round, so the group seed is committed lazily on entering the body.
    DG_ASSERT(preamble_.has_value());
    auto payload = preamble_->step_transmit(ctx.rng());
    if (payload.has_value()) return sim::Packet{id(), *payload};
    return std::nullopt;
  }

  // Commit the group seed on entering the body (the preamble has fully
  // run).
  if (!phase_seed_.has_value()) {
    DG_ASSERT(preamble_.has_value() && preamble_->done());
    DG_ASSERT(preamble_->decision().has_value());
    phase_seed_ = preamble_->decision();
    seed_bits_.emplace(phase_seed_->seed_value);
  }

  if (!current_.has_value()) return std::nullopt;  // receiving state
  return body_transmit(ctx, body_index_now());
}

std::optional<sim::Packet> LbProcess::body_transmit(sim::RoundContext& ctx,
                                                    std::int64_t body_round) {
  DG_ASSERT(seed_bits_.has_value());
  DG_ASSERT(body_round >= 0 &&
            body_round < params_.phases_per_seed * params_.t_prog);

  // All holders of this seed read the same bit window for this body round,
  // so the whole group makes identical participant / b choices.  Windows
  // are indexed by the body round across the whole group: bits are never
  // reused between segments (the Section 4.2 remark: one agreement, seeds
  // "of sufficient length to satisfy the demands of multiple phases").
  const std::int64_t stride = params_.participant_bits + params_.b_bits;
  seed_bits_->seek(static_cast<std::uint64_t>(body_round * stride));

  bool participant;
  std::uint64_t b_value;
  if (params_.use_shared_seeds) {
    participant = seed_bits_->take_all_zero(params_.participant_bits);
    b_value = seed_bits_->take(params_.b_bits);
  } else {
    // E10 ablation: same marginal distributions, private coins -- no
    // coordination across neighbors.
    participant = ctx.rng().chance(std::ldexp(1.0, -params_.participant_bits));
    b_value = params_.b_bits == 0
                  ? 0
                  : ctx.rng().below(std::uint64_t{1} << params_.b_bits);
  }

  if (!participant) return std::nullopt;  // non-participants receive

  // b in [log Delta] = {1, ..., log_delta}; b = 1 means probability 1/2.
  const int b =
      static_cast<int>(b_value % static_cast<std::uint64_t>(params_.log_delta)) +
      1;

  // Local (independent) randomness: broadcast iff b private coins are all 0,
  // i.e. with probability 2^-b.
  if (!ctx.rng().chance(std::ldexp(1.0, -b))) return std::nullopt;

  return sim::Packet{id(),
                     sim::DataPayload{current_->id, current_->content}};
}

void LbProcess::receive(const std::optional<sim::Packet>& packet,
                        sim::RoundContext& ctx) {
  if (resync_) return;  // rejoining: no preamble state to feed yet
  if (in_preamble_now()) {
    DG_ASSERT(preamble_.has_value());
    preamble_->step_receive(packet);
    return;
  }
  if (packet.has_value() && packet->is_data()) {
    handle_data(packet->data(), ctx.round());
  }
}

void LbProcess::handle_data(const sim::DataPayload& data, sim::Round round) {
  if (!seen_.insert(data.id).second) return;  // already received before
  ++recv_count_;
  if (listener_ != nullptr) {
    listener_->on_recv(vertex_, data.id, data.content, round);
  }
}

void LbProcess::end_round(sim::RoundContext& ctx) {
  if (!segment_end_now_) return;
  if (!current_.has_value()) return;
  const sim::Round t = ctx.round();
  if (--current_->phases_left > 0) return;
  // End of the last round of the last sending phase: ack and return to the
  // receiving state.
  ++ack_count_;
  if (listener_ != nullptr) {
    listener_->on_ack(vertex_, current_->id, t);
  }
  current_.reset();
}

}  // namespace dg::lb
