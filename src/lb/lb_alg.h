// LBAlg (paper Section 4.2): the ongoing local broadcast service.
//
// Rounds are partitioned into phases of T_s + T_prog rounds.  Every phase
// starts with a SeedAlg(eps2) preamble (all nodes participate, regardless of
// state); the committed seed s^(j)_u supplies the shared random bits for the
// phase body.  A node is in the receiving or the sending state.  Receivers
// listen.  A sender, in each body round:
//   1. consumes d = ceil(log2(r^2 log(1/eps2))) seed bits; it is a
//      *participant* iff all are 0 (probability a / (r^2 log(1/eps2)));
//   2. a non-participant receives;
//   3. a participant consumes ceil(log2(log2 Delta)) further seed bits
//      giving b in [log Delta], then flips b *locally random* coins and
//      broadcasts iff all are 0 (probability 2^-b).
// A bcast(m) input switches the node to the sending state at the next phase
// boundary for T_ack full phases; the ack(m) output fires at the end of the
// last round of the last of those phases.  Any newly received message m'
// triggers a recv(m') output, in either state.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>

#include "graph/dual_graph.h"
#include "lb/params.h"
#include "seed/seed_alg.h"
#include "sim/packet.h"
#include "sim/process.h"
#include "util/bits.h"

namespace dg::lb {

/// Receives the service's outputs (the bcast/ack/recv interface of the LB
/// problem).  `vertex` is a label for the benefit of checkers and
/// environments; the process logic itself never reads it.
class LbListener {
 public:
  virtual ~LbListener() = default;
  virtual void on_ack(graph::Vertex vertex, const sim::MessageId& m,
                      sim::Round round) = 0;
  virtual void on_recv(graph::Vertex vertex, const sim::MessageId& m,
                       std::uint64_t content, sim::Round round) = 0;

  /// Whether on_ack/on_recv tolerate concurrent calls from the engine's
  /// sharded round loop (distinct vertices only; at most one call of each
  /// kind per vertex per round).  Listeners that buffer per vertex and
  /// flush at the serial RoundHooks checkpoints return true (see
  /// lb/simulation.cpp's Fanout); the conservative default keeps processes
  /// with an unknown listener on the serial path.
  virtual bool concurrent_safe() const { return false; }
};

class LbProcess final : public sim::Process {
 public:
  /// `vertex` labels outputs; `listener` may be null (outputs dropped).
  LbProcess(const LbParams& params, sim::ProcessId id, graph::Vertex vertex,
            LbListener* listener);

  // ---- environment-facing API (round step 1: inputs) ----

  /// bcast(m) input.  The environment contract (Section 4.1) forbids a new
  /// bcast before the previous ack; enforced by contract check.
  /// Returns the id of the enqueued message.
  sim::MessageId post_bcast(std::uint64_t content);

  /// abort(m) input (abstract MAC layer extension [14, 16]): cancels the
  /// outstanding broadcast, if any.  No ack will be emitted for it and the
  /// node stops transmitting it from this round on.  Returns the id of the
  /// aborted message, if one was outstanding.
  std::optional<sim::MessageId> abort();

  /// True while a message is pending or actively broadcast (no new bcast
  /// input is admissible).
  bool busy() const noexcept {
    return pending_.has_value() || current_.has_value();
  }

  /// True while in the sending state (a phase is consuming T_ack budget).
  bool sending() const noexcept { return current_.has_value(); }

  // ---- sim::Process interface ----

  std::optional<sim::Packet> transmit(sim::RoundContext& ctx) override;
  void receive(const std::optional<sim::Packet>& packet,
               sim::RoundContext& ctx) override;
  void end_round(sim::RoundContext& ctx) override;

  /// Sparse-round consent (sim/process.h).  Two closed-form silent windows:
  /// receiving-state body rounds (up to the round before the next segment
  /// boundary, where a pending bcast could be promoted) and the passive
  /// post-recovery stretch (up to the round before the next group start).
  /// Preamble and sending-state rounds draw randomness every round and
  /// never park.
  std::int64_t silent_steps(std::int64_t k) override;

  /// Fault seam.  A crash drops all protocol state (the wrapper aborts the
  /// in-flight broadcast *before* this fires, so the abort path accounts
  /// for it); recovery re-synchronizes the round cursor to the network-wide
  /// group layout but keeps the node passive -- transmitting nothing,
  /// consuming no receptions -- until the next group start hands it a fresh
  /// SeedAlg preamble, since it cannot hold a group seed it never agreed
  /// on.  Identity-level facts survive both: the id, the message sequence
  /// counter (recovered nodes must not reuse MessageIds) and the seen-set
  /// (no duplicate recv outputs for pre-crash receptions).
  void on_crash(sim::Round round) override;
  void on_recover(sim::Round round) override;

  /// All per-round state is per-vertex; the only cross-vertex effect is the
  /// listener fan-out, so sharding is safe exactly when the listener
  /// consents.
  bool shard_safe() const override {
    return listener_ == nullptr || listener_->concurrent_safe();
  }

  // ---- introspection (checkers / benches; not visible to the protocol) --

  /// The seed committed for the current phase (empty during preambles).
  const std::optional<seed::SeedDecision>& phase_seed() const noexcept {
    return phase_seed_;
  }
  std::uint64_t messages_received() const noexcept { return recv_count_; }
  std::uint64_t acks_emitted() const noexcept { return ack_count_; }

 private:
  struct ActiveMessage {
    sim::MessageId id;
    std::uint64_t content = 0;
    std::int64_t phases_left = 0;
  };

  // Round layout.  A *group* is one SeedAlg preamble (T_s rounds) followed
  // by phases_per_seed body *segments* of T_prog rounds each (the paper's
  // baseline is one segment per group).  State transitions (promotion of a
  // pending message, ack countdown) happen at segment boundaries.
  //
  // The position within the group is tracked *incrementally*: transmit() is
  // called exactly once per round (the sim::Process contract) and advances
  // the cursor; receive() and end_round() run later in the same round and
  // reuse the cached predicates.  This keeps the per-round hot path free of
  // the `(t - 1) % group_length` divisions the closed forms would need.
  void advance_round_position() noexcept {
    ++pos_in_group_;
    if (pos_in_group_ == group_len_) pos_in_group_ = 0;
    if (pos_in_group_ < params_.t_s) {
      seg_round_ = -1;  // preamble
    } else if (pos_in_group_ == params_.t_s) {
      seg_round_ = 0;
    } else {
      ++seg_round_;
      if (seg_round_ == params_.t_prog) seg_round_ = 0;
    }
    // Phase boundaries where a pending message may enter the sending state:
    // the group start (= the paper's phase start for k = 1) and the starts
    // of the second and later body segments of a group (k > 1 only).
    phase_boundary_now_ =
        pos_in_group_ == 0 || (pos_in_group_ > params_.t_s && seg_round_ == 0);
    segment_end_now_ = seg_round_ == params_.t_prog - 1;
  }
  bool in_preamble_now() const noexcept { return seg_round_ < 0; }
  /// 0-based body round within the group (valid in body rounds).
  std::int64_t body_index_now() const noexcept {
    return pos_in_group_ - params_.t_s;
  }

  void begin_group(sim::RoundContext& ctx);
  std::optional<sim::Packet> body_transmit(sim::RoundContext& ctx,
                                           std::int64_t body_round);
  void handle_data(const sim::DataPayload& data, sim::Round round);

  LbParams params_;
  graph::Vertex vertex_;
  LbListener* listener_;

  // Incremental round-position cursor (see advance_round_position()).
  std::int64_t group_len_ = 1;
  std::int64_t pos_in_group_ = -1;  ///< group position of the current round
  std::int64_t seg_round_ = -1;     ///< round within body segment; -1 in preamble
  bool phase_boundary_now_ = false;
  bool segment_end_now_ = false;

  std::optional<ActiveMessage> pending_;  // awaiting next phase boundary
  std::optional<ActiveMessage> current_;  // being broadcast
  std::uint32_t next_seq_ = 0;
  bool resync_ = false;  ///< recovered; passive until the next group start

  std::optional<seed::SeedAlgRunner> preamble_;
  std::optional<seed::SeedDecision> phase_seed_;
  std::optional<SeedBits> seed_bits_;

  std::unordered_set<sim::MessageId, sim::MessageIdHash> seen_;
  std::uint64_t recv_count_ = 0;
  std::uint64_t ack_count_ = 0;
};

}  // namespace dg::lb
