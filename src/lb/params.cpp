#include "lb/params.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"
#include "util/intmath.h"

namespace dg::lb {

LbParams LbParams::calibrated(double eps1, double r, std::size_t delta,
                              std::size_t delta_prime,
                              const LbScales& scales) {
  DG_EXPECTS(eps1 > 0.0 && eps1 <= 0.5);
  DG_EXPECTS(r >= 1.0);
  DG_EXPECTS(delta >= 1);
  DG_EXPECTS(delta_prime >= delta);
  DG_EXPECTS(scales.gamma >= 1.0);
  DG_EXPECTS(scales.ack_scale > 0.0);

  LbParams p;
  p.eps1 = eps1;
  p.r = r;
  p.delta = delta;
  p.delta_prime = delta_prime;

  p.log_delta = std::max(1, ceil_log2(pow2_ceil(delta)));
  const double log_d = static_cast<double>(p.log_delta);

  // eps' = Theta((1 / (r^4 log^4 Delta))^(gamma / r^2)): the largest SeedAlg
  // error that still makes the union bounds of Appendix C work.
  const double base = 1.0 / (std::pow(r, 4.0) * std::pow(std::max(log_d, 1.0), 4.0));
  const double eps_prime = std::pow(base, scales.gamma / (r * r));
  // eps2 = min(eps', eps1), additionally clamped to SeedAlg's 1/4 ceiling.
  p.eps2 = std::min({eps_prime, eps1, 0.25});

  p.seed = seed::SeedAlgParams::make(p.eps2, delta, scales.c4);
  p.t_s = p.seed.total_rounds();

  const double log1 = log2_clamped(1.0 / eps1, /*floor_at=*/1.0);
  const double log2e = log2_clamped(1.0 / p.eps2, /*floor_at=*/2.0);

  p.t_prog = ceil_to_int(scales.c1 * r * r * log1 * log2e * log_d);

  p.participant_bits =
      std::max(1, ceil_log2(static_cast<std::uint64_t>(
                     std::ceil(r * r * log2e))));
  p.b_bits = ceil_log2(static_cast<std::uint64_t>(p.log_delta));
  p.kappa = p.t_prog * (p.participant_bits + p.b_bits);

  // T_ack = 12 ln(2 Delta / eps1) Delta' / (c2 c1 log(1/eps1) (1 - eps1/2)).
  const double t_ack_num = 12.0 *
                           std::log(2.0 * static_cast<double>(delta) / eps1) *
                           static_cast<double>(delta_prime);
  const double t_ack_den =
      scales.c2 * scales.c1 * log1 * (1.0 - eps1 / 2.0);
  p.t_ack_phases_theory = ceil_to_int(t_ack_num / t_ack_den);
  p.t_ack_phases = std::max<std::int64_t>(
      1, ceil_to_int(scales.ack_scale * t_ack_num / t_ack_den));

  DG_ENSURES(p.t_prog >= 1);
  DG_ENSURES(p.t_s >= 1);
  return p;
}

}  // namespace dg::lb
