// LBAlg parameters (paper Section 4.2 + Appendix C.1).
//
// Every formula keeps the exact structure of Appendix C.1:
//   eps'    = Theta((1 / (r^4 log^4 Delta))^(gamma / r^2)),  gamma > 1
//   eps2    = min(eps', eps1)
//   T_prog  = ceil(c1 * r^2 * log(1/eps1) * log(1/eps2) * log Delta)
//   d       = ceil(log2(r^2 * log(1/eps2)))          (participant bits)
//   b-bits  = ceil(log2(log2 Delta))                 (probability index bits)
//   kappa   = T_prog * (d + b-bits)                  (seed bits per phase)
//   T_ack   = ceil(12 * ln(2 Delta / eps1) * Delta' /
//                  (c2 * c1 * log(1/eps1) * (1 - eps1/2)))   (phases)
//   T_s     = SeedAlg(eps2) round count
// The paper's c1, c2 are "sufficiently large" proof constants; LbScales
// exposes them (plus SeedAlg's c4 and an ack_scale knob) with practical
// defaults calibrated so the Monte Carlo suite meets the target error
// bounds at laptop scale (docs/PAPER_MAP.md, substitutions table).
#pragma once

#include <cstdint>

#include "seed/seed_alg.h"

namespace dg::lb {

struct LbScales {
  double c1 = 1.0;        ///< T_prog leading constant (calibrated: progress
                          ///< frequency ~0.95 at eps1 = 0.1 on dense nets)
  double c2 = 1.0;        ///< reception-probability constant (T_ack formula)
  double c4 = 1.0;        ///< SeedAlg phase-length constant
  double gamma = 1.1;     ///< exponent constant in eps' (paper: gamma > 1)
  double ack_scale = 1.0; ///< multiplies T_ack (benches shrink long runs)
};

struct LbParams {
  // Problem-level inputs.
  double eps1 = 0.1;             ///< LB error bound, 0 < eps1 <= 1/2
  double r = 1.5;                ///< geographic parameter
  std::size_t delta = 2;         ///< known bound on |N_G(u) u {u}|
  std::size_t delta_prime = 2;   ///< known bound on |N_G'(u) u {u}|

  // Derived (Appendix C.1).
  double eps2 = 0.1;             ///< SeedAlg error parameter
  seed::SeedAlgParams seed;      ///< SeedAlg(eps2) parameters
  std::int64_t t_s = 1;          ///< preamble rounds = seed.total_rounds()
  std::int64_t t_prog = 1;       ///< body rounds per phase
  int participant_bits = 1;      ///< d
  int b_bits = 0;                ///< bits selecting b in [log Delta]
  int log_delta = 1;             ///< log2(Delta rounded up to power of 2)
  std::int64_t t_ack_phases = 1;        ///< sending phases per message
  std::int64_t t_ack_phases_theory = 1; ///< unscaled Appendix C.1 value
  std::int64_t kappa = 1;        ///< seed bits consumed per phase body

  /// Seed bits needed per group under seed reuse (kappa * phases_per_seed).
  std::int64_t kappa_per_group() const noexcept {
    return kappa * phases_per_seed;
  }

  /// Disables the shared-seed mechanism (E10 ablation): body-round choices
  /// fall back to private local randomness.  Timing structure is unchanged
  /// so the comparison isolates exactly the seed-agreement contribution.
  bool use_shared_seeds = true;

  /// Seed reuse (the Section 4.2 remark): run SeedAlg once per *group* of
  /// this many phases, drawing a seed long enough for all of them.  The
  /// worst-case bounds are unchanged; the amortized preamble overhead drops
  /// from T_s/(T_s + T_prog) to T_s/(T_s + k*T_prog).  1 = the paper's
  /// baseline layout.
  int phases_per_seed = 1;

  /// One LBAlg phase: preamble + body (= the spec's t_prog bound).
  std::int64_t phase_length() const noexcept { return t_s + t_prog; }
  /// One group: a SeedAlg preamble followed by phases_per_seed bodies.
  std::int64_t group_length() const noexcept {
    return t_s + phases_per_seed * t_prog;
  }
  /// The spec's t_prog parameter (Theorem 4.1: T_s + T_prog).  Valid for
  /// every group layout: at most one preamble separates a receiver from a
  /// full body segment.
  std::int64_t t_prog_bound() const noexcept { return phase_length(); }
  /// The spec's t_ack parameter.  For the paper's layout (k = 1) this is
  /// exactly Theorem 4.1's (T_ack + 1)(T_s + T_prog); for k > 1 the wait
  /// and the preamble crossings are accounted separately.
  std::int64_t t_ack_bound() const noexcept {
    if (phases_per_seed == 1) {
      return (t_ack_phases + 1) * phase_length();
    }
    const std::int64_t preambles_crossed =
        t_ack_phases / phases_per_seed + 2;
    return (t_s + t_prog) + t_ack_phases * t_prog + preambles_crossed * t_s;
  }

  /// Builds the full parameter set from the problem-level inputs.
  static LbParams calibrated(double eps1, double r, std::size_t delta,
                             std::size_t delta_prime,
                             const LbScales& scales = LbScales{});
};

}  // namespace dg::lb
