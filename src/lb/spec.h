// Machine-checkable form of the LB(t_ack, t_prog, eps) specification
// (Section 4.1).
//
// The checker is a sim::Observer plus an LbListener, so it sees both ground
// truth (raw transmissions/receptions, which define the progress events
// B^u_alpha) and the service outputs (bcast/ack/recv, which define timely
// acknowledgement, validity and reliability).  Deterministic conditions are
// verified in every execution; probabilistic conditions accumulate into
// Bernoulli tallies that Monte Carlo harnesses aggregate across trials.
//
//   1. Timely acknowledgement: each bcast(m)_u gets exactly one ack(m)_u
//      within t_ack rounds.                                [deterministic]
//   2. Validity: recv(m)_u at round t requires some v in N_G'(u) actively
//      broadcasting m at t.                                [deterministic]
//   3. Reliability: with prob >= 1-eps every v in N_G(u) outputs recv(m)_v
//      before u's ack(m)_u.                                [probabilistic]
//   4. Progress: with prob >= 1-eps, a node with a G-neighbor active
//      through an entire t_prog-round phase receives at least one message
//      from an active broadcaster during that phase.       [probabilistic]
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/dual_graph.h"
#include "lb/lb_alg.h"
#include "lb/params.h"
#include "sim/observer.h"
#include "util/interval.h"

namespace dg::lb {

/// Per-broadcast record (exposed for latency measurements by the benches).
struct BroadcastRecord {
  graph::Vertex origin = 0;
  sim::MessageId id;
  sim::Round input_round = 0;
  sim::Round ack_round = 0;  // 0 while outstanding
  /// Per G-neighbor: round of the recv(m) output (0 if none yet).
  std::unordered_map<graph::Vertex, sim::Round> recv_rounds;
  /// Round every G-neighbor had recv'd (0 if incomplete) -- the measured
  /// "delivery complete" latency behind the t_ack experiments.
  sim::Round delivered_round = 0;
  /// Round the broadcast was aborted (abstract MAC abort input; 0 = never).
  sim::Round abort_round = 0;

  bool acked() const noexcept { return ack_round != 0; }
  bool delivered() const noexcept { return delivered_round != 0; }
  bool aborted() const noexcept { return abort_round != 0; }
};

/// Graceful-degradation accounting under fault injection (crash/recover
/// schedules, see fault/plan.h).  The spec tallies in LbSpecReport are
/// asserted only over *fault-free* windows -- a (vertex, phase) progress
/// window touched by a fault at the vertex or a G-neighbor, or a broadcast
/// whose lifetime overlaps such a fault, moves its tally here instead, so
/// the paper's bounds are never blamed for crashed hardware while the
/// degradation itself stays measured.
struct DegradationLedger {
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;

  /// Progress over fault-touched (vertex, phase) windows; the complement
  /// of LbSpecReport::progress.  1 - frequency() is the raw progress-bound
  /// violation rate attributable to faults.
  BernoulliTally faulty_progress;
  /// Reliability over broadcasts whose lifetime overlapped a fault at the
  /// origin's G-neighborhood.
  BernoulliTally faulty_reliability;

  /// Re-stabilization: rounds from a recovery until the recovered vertex's
  /// first reception (only recoveries that re-stabilized are summed).
  std::uint64_t restab_count = 0;
  std::uint64_t restab_rounds_sum = 0;

  /// Throughput dip: acks landing in rounds with >= 1 vertex down, vs the
  /// execution totals (LbSpecReport::ack_count over rounds_observed).
  std::uint64_t rounds_observed = 0;
  std::uint64_t fault_rounds = 0;
  std::uint64_t acks_in_fault_rounds = 0;

  double progress_violation_rate() const noexcept {
    return faulty_progress.trials() == 0 ? 0.0
                                         : 1.0 - faulty_progress.frequency();
  }
  double mean_restabilization_rounds() const noexcept {
    return restab_count == 0 ? 0.0
                             : static_cast<double>(restab_rounds_sum) /
                                   static_cast<double>(restab_count);
  }
  /// Ack throughput inside fault rounds (acks/round); compare against the
  /// execution-wide rate for the dip.
  double fault_window_ack_rate() const noexcept {
    return fault_rounds == 0 ? 0.0
                             : static_cast<double>(acks_in_fault_rounds) /
                                   static_cast<double>(fault_rounds);
  }
};

struct LbSpecReport {
  // Deterministic conditions -- must hold in every execution.
  bool timely_ack_ok = true;   ///< every ack within t_ack, exactly one
  bool validity_ok = true;     ///< every recv backed by an active broadcaster
  std::uint64_t violations = 0;

  // Probabilistic conditions, tallied per opportunity.
  BernoulliTally reliability;  ///< per completed bcast
  BernoulliTally progress;     ///< per (vertex, phase) with A^u_alpha

  // Volume counters.
  std::uint64_t bcast_count = 0;
  std::uint64_t ack_count = 0;
  std::uint64_t recv_count = 0;
  std::uint64_t raw_receptions = 0;
};

class LbSpecChecker final : public sim::Observer, public LbListener {
 public:
  /// `ids[v]` is the ProcessId at vertex v.  When `record_details` is set,
  /// per-broadcast records (latencies, per-neighbor recv rounds) are kept
  /// for the benches; checking itself never needs them to be retained.
  LbSpecChecker(const graph::DualGraph& g, std::vector<sim::ProcessId> ids,
                const LbParams& params, bool record_details = true);

  // ---- wiring (called by the simulation wrapper) ----

  /// The validity condition's "some v in N_G'(u)" clause presumes the wire
  /// is confined to G' -- true for the dual-graph reception rule, but a
  /// physical channel (phys::SinrChannel ground truth) may legitimately
  /// deliver across pairs the declared graph does not connect.  Setting
  /// this false keeps the active-broadcaster half of validity and drops
  /// the adjacency half, so SINR executions are not flagged for obeying
  /// physics.  Default: true (the paper's model).
  void set_require_gprime_adjacency(bool require) {
    require_gprime_adjacency_ = require;
  }

  /// Reports a bcast(m)_u input (round = the round whose input step carries
  /// it, i.e. engine.round() + 1 at post time).
  void on_bcast(graph::Vertex u, const sim::MessageId& m, sim::Round round);

  /// Reports an abort(m)_u input: the broadcast ends without an ack; no
  /// reliability tally is recorded (the guarantee is forfeited by the
  /// environment, not violated by the service).
  void on_abort(graph::Vertex u, const sim::MessageId& m, sim::Round round);

  /// Fault bookkeeping (called by the simulation wrapper's FaultListener).
  /// A crash at u taints u's and every G-neighbor's current progress
  /// window, marks overlapping broadcasts, and starts the fault-round
  /// clock; a recovery does the same tainting and arms the
  /// re-stabilization timer.  Any in-flight broadcast at u must be
  /// reported through on_abort separately (the crash-abort path).
  void on_crash(graph::Vertex u, sim::Round round);
  void on_recover(graph::Vertex u, sim::Round round);

  // LbListener:
  void on_ack(graph::Vertex vertex, const sim::MessageId& m,
              sim::Round round) override;
  void on_recv(graph::Vertex vertex, const sim::MessageId& m,
               std::uint64_t content, sim::Round round) override;

  // sim::Observer:
  unsigned interest() const override {
    return sim::Observer::kReceive | sim::Observer::kRoundEnd;
  }
  void on_receive(sim::Round round, graph::Vertex u, graph::Vertex from,
                  const sim::Packet& packet) override;
  void on_round_end(sim::Round round) override;

  // ---- results ----

  const LbSpecReport& report() const noexcept { return report_; }
  const DegradationLedger& ledger() const noexcept { return ledger_; }
  const std::vector<BroadcastRecord>& broadcasts() const noexcept {
    return records_;
  }

  /// Whether vertex v is actively broadcasting some message in `round`
  /// (ground truth used by the progress condition and by bench observers).
  bool actively_broadcasting(graph::Vertex v, sim::Round round) const;

 private:
  struct ActiveEntry {
    sim::MessageId id;
    sim::Round input_round = 0;
    sim::Round ack_round = 0;  // 0 while outstanding
    std::size_t record_index = 0;
    std::size_t recv_seen = 0;       // distinct G-neighbors that recv'd
    sim::Round last_recv_round = 0;  // max recv round among G-neighbors
    bool all_recv_before_ack_possible = true;
    bool fault_overlap = false;  // lifetime touched a G-neighborhood fault
  };

  void finish_phase(sim::Round phase_end_round);

  /// Taints the current progress window of u and its G-neighbors and
  /// marks their outstanding broadcasts as fault-overlapped (shared by
  /// crash and recovery: both events perturb the neighborhood).
  void taint_neighborhood(graph::Vertex u);

  const graph::DualGraph* graph_;
  std::vector<sim::ProcessId> ids_;
  std::unordered_map<sim::ProcessId, graph::Vertex> vertex_of_;
  LbParams params_;
  bool record_details_;
  bool require_gprime_adjacency_ = true;

  LbSpecReport report_;
  std::vector<BroadcastRecord> records_;

  /// Outstanding (not yet acked) broadcast per vertex, if any.
  std::vector<std::optional<ActiveEntry>> active_;
  /// Message id -> owning vertex for outstanding messages.
  std::unordered_map<sim::MessageId, graph::Vertex, sim::MessageIdHash>
      owner_of_;

  // Progress bookkeeping for the current t_prog-aligned phase.  Whole-phase
  // activity is evaluated from active_ at the phase boundary plus a
  // per-vertex *activity streak*: streak_start_[v] is the first round of
  // v's current unbroken run of activity, maintained across back-to-back
  // messages (an ack at round m followed by a bcast at m+1 keeps the
  // streak alive, exactly as the per-round AND this replaces counted it).
  // v was active in every round of a phase iff its entry is still alive at
  // the boundary and the streak predates the phase, so round ends are
  // O(#acks) instead of an O(n) activity scan.
  std::vector<graph::Vertex> retire_pending_;  ///< acked this round
  std::vector<sim::Round> streak_start_;  ///< first round of current streak
  std::vector<sim::Round> active_until_;  ///< last active round once retired
  std::vector<bool> qualifying_reception_;  ///< u received from an active v
  sim::Round rounds_in_phase_ = 0;

  // Fault-awareness (all empty-cost while no fault plan reports events).
  DegradationLedger ledger_;
  std::vector<bool> down_;           ///< vertex currently crashed
  std::vector<bool> fault_touched_;  ///< progress window tainted this phase
  std::vector<sim::Round> restab_pending_;  ///< recovery round; 0 = idle
  std::size_t down_count_ = 0;
  std::uint64_t acks_this_round_ = 0;
  bool faults_seen_ = false;  ///< any crash ever reported
};

}  // namespace dg::lb
