// Reusable LBAlg workload measurements.
//
// These were born inside the bench binaries (bench_support.h's
// lb_progress_latency, bench_e14's flood measurement); the scenario
// subsystem (src/scn/) runs the same workloads declaratively, so the
// measurement logic lives here and both layers share one definition.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/dual_graph.h"
#include "lb/params.h"
#include "lb/simulation.h"
#include "sim/engine_config.h"
#include "sim/scheduler.h"

namespace dg::lb {

/// Measures LBAlg progress latency: rounds until the designated receiver's
/// first data reception, with `senders` kept saturated.  Returns 0 when the
/// receiver never received within `horizon_phases`.  `config` is applied
/// to the internally constructed simulation through
/// LbSimulation::configure (thread cap, telemetry, spliced stages; results
/// are byte-identical at every thread cap); when it carries telemetry, the
/// wrapper aggregates are exported after the run.
sim::Round progress_latency(const graph::DualGraph& g,
                            std::unique_ptr<sim::LinkScheduler> scheduler,
                            const LbParams& params,
                            const std::vector<graph::Vertex>& senders,
                            graph::Vertex receiver,
                            std::int64_t horizon_phases, std::uint64_t seed,
                            const sim::EngineConfig& config = {});

/// Same measurement, but reception decided by an explicit channel model
/// (e.g. phys::SinrChannel ground truth) instead of the scheduler.
sim::Round progress_latency(const graph::DualGraph& g,
                            std::unique_ptr<phys::ChannelModel> channel,
                            const LbParams& params,
                            const std::vector<graph::Vertex>& senders,
                            graph::Vertex receiver,
                            std::int64_t horizon_phases, std::uint64_t seed,
                            const sim::EngineConfig& config = {});

/// Flood-shape statistics of one saturated-sender LBAlg execution (the E14
/// abstraction-fidelity metrics): mean first-data-reception round over all
/// non-sender vertices (horizon-clamped), the fraction reached, raw
/// single-transmitter deliveries, and acknowledgement latency/count.
struct FloodStats {
  double progress_rounds = 0;  ///< mean first data reception, clamped
  double reached_frac = 0;     ///< fraction of non-senders that received
  double receptions = 0;       ///< raw single-transmitter deliveries
  double ack_latency = 0;      ///< mean over acked broadcasts; 0 if none
  double acked = 0;            ///< acked broadcast count
};

/// Runs `sim` for `horizon_phases` phases with `sender` kept saturated and
/// collects FloodStats.  The simulation must be freshly constructed (no
/// rounds executed, no probes attached).
FloodStats run_flood(LbSimulation& sim, graph::Vertex sender,
                     std::int64_t horizon_phases);

}  // namespace dg::lb
