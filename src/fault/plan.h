// Deterministic fault injection: crash/recover/churn schedules.
//
// The paper's guarantees are stated over *unreliable links* but a static
// population; this layer tests the claim that matters for dynamic
// deployments (cf. the multi-message-broadcast line over unreliable links,
// PAPERS.md) by crashing and recovering whole vertices against the running
// engine.  A FaultPlan is consulted once per round, *serially*, at the top
// of Engine::run_round() -- before the transmit phase, in both the serial
// and the sharded round loop -- so the crashed set is frozen before any
// block-parallel work starts and executions stay byte-identical at every
// round_threads value.
//
// Semantics of a crashed vertex: it neither transmits nor receives (its
// process's transmit()/receive()/end_round() are simply not called, and no
// observer events are emitted for it), its rng stream pauses, and the
// engine fires Process::on_crash / FaultListener::on_crash exactly once at
// the crash round.  Recovery fires Process::on_recover (the process
// re-initializes its protocol state, keeping only identity-level facts) and
// FaultListener::on_recover.  Join/leave are the degenerate schedules:
// leave = crash with no recovery, join = start crashed, recover once.
//
// All plan randomness derives from the engine's master seed under the
// dedicated stream tag 0xFA17, so fault schedules perturb no protocol,
// scheduler or traffic coins -- attaching a plan changes *only* the rounds
// it touches.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/dual_graph.h"
#include "sim/process.h"
#include "util/bitmap.h"
#include "util/rng.h"

namespace dg::fault {

/// Stream tag partitioning fault randomness away from every other consumer
/// of the master seed (processes 0x9..., traffic 0x7fc, ids 0x1d5).
inline constexpr std::uint64_t kFaultStream = 0xFA17ULL;

enum class FaultKind : std::uint8_t {
  kCrash,    ///< vertex goes down at this round (before transmitting)
  kRecover,  ///< vertex comes back up at this round (may transmit again)
};

struct FaultEvent {
  sim::Round round = 0;
  graph::Vertex vertex = 0;
  FaultKind kind = FaultKind::kCrash;
};

/// Protocol-wrapper hook for fault bookkeeping (LbSimulation aborts the
/// crashed vertex's in-flight broadcast and tells the traffic injector to
/// park its queue).  For a crash the listener fires *before*
/// Process::on_crash, so it can still read the pre-crash process state; for
/// a recovery it fires *after* Process::on_recover, so it talks to a
/// re-initialized process.
class FaultListener {
 public:
  virtual ~FaultListener() = default;
  virtual void on_crash(sim::Round round, graph::Vertex v) = 0;
  virtual void on_recover(sim::Round round, graph::Vertex v) = 0;
};

/// A deterministic per-round fault schedule.  bind() is called once by
/// Engine::set_fault_plan with the execution's graph and master seed;
/// plan_round() is then called serially at the top of every round with the
/// currently-crashed set and appends this round's events.  Events for
/// already-crashed (crash) / already-up (recover) vertices are ignored by
/// the engine, so plans may emit idempotently.
class FaultPlan {
 public:
  virtual ~FaultPlan() = default;

  FaultPlan() = default;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  virtual void bind(const graph::DualGraph& g, std::uint64_t master_seed) = 0;
  virtual void plan_round(sim::Round round, const Bitmap& crashed,
                          std::vector<FaultEvent>& out) = 0;

  /// Progress feed for adversarial plans: the wrapper reports protocol
  /// progress (LbSimulation forwards every ack) so a plan can target the
  /// highest-progress vertices.  Default: ignored.
  virtual void note_progress(graph::Vertex v) { (void)v; }

  virtual const char* name() const noexcept = 0;
};

/// Fixed script: the event list, verbatim.  Events must be sorted by round
/// (ties in list order).  The programmatic plan behind tests and the
/// `crash:` spec form.
class ScriptFaultPlan final : public FaultPlan {
 public:
  explicit ScriptFaultPlan(std::vector<FaultEvent> events);

  void bind(const graph::DualGraph& g, std::uint64_t master_seed) override;
  void plan_round(sim::Round round, const Bitmap& crashed,
                  std::vector<FaultEvent>& out) override;
  const char* name() const noexcept override { return "script"; }

 private:
  std::vector<FaultEvent> events_;  ///< sorted by round
  std::size_t next_ = 0;            ///< first event not yet emitted
};

/// Memoryless churn: each up vertex crashes with probability rate/n per
/// round (so `rate` is the expected network-wide crash arrivals per round,
/// mirroring the poisson traffic spec), and each crash draws an
/// exponential repair time with the given mean (>= 1 round).
class PoissonFaultPlan final : public FaultPlan {
 public:
  PoissonFaultPlan(double rate, double mean_repair);

  void bind(const graph::DualGraph& g, std::uint64_t master_seed) override;
  void plan_round(sim::Round round, const Bitmap& crashed,
                  std::vector<FaultEvent>& out) override;
  const char* name() const noexcept override { return "poisson"; }

 private:
  double rate_;
  double mean_repair_;
  double per_vertex_prob_ = 0.0;
  Rng rng_{0};
  std::vector<sim::Round> recover_at_;  ///< 0 = not scheduled
};

/// Correlated region kill: at `round`, every vertex within `radius` G-hops
/// of `center` crashes at once; all of them recover together `repair`
/// rounds later (repair 0 = never -- a permanent leave).
class RegionFaultPlan final : public FaultPlan {
 public:
  RegionFaultPlan(sim::Round round, graph::Vertex center, int radius,
                  sim::Round repair);

  void bind(const graph::DualGraph& g, std::uint64_t master_seed) override;
  void plan_round(sim::Round round, const Bitmap& crashed,
                  std::vector<FaultEvent>& out) override;
  const char* name() const noexcept override { return "region"; }

 private:
  sim::Round kill_round_;
  graph::Vertex center_;
  int radius_;
  sim::Round repair_;
  std::vector<graph::Vertex> region_;  ///< BFS ball, ascending
};

/// k-crash adversary: every `period` rounds it crashes the k up vertices
/// with the most protocol progress (acks fed via note_progress; ties break
/// toward the lower vertex), each recovering `repair` rounds later.
/// Seed-deterministic like the adaptive jammer -- and, like it, strictly
/// stronger than the paper's oblivious model: it reacts to the execution.
class AdversaryFaultPlan final : public FaultPlan {
 public:
  AdversaryFaultPlan(int k, sim::Round period, sim::Round repair);

  void bind(const graph::DualGraph& g, std::uint64_t master_seed) override;
  void plan_round(sim::Round round, const Bitmap& crashed,
                  std::vector<FaultEvent>& out) override;
  void note_progress(graph::Vertex v) override;
  const char* name() const noexcept override { return "adversary"; }

 private:
  int k_;
  sim::Round period_;
  sim::Round repair_;
  std::vector<std::uint64_t> progress_;
  std::vector<sim::Round> recover_at_;
};

}  // namespace dg::fault
