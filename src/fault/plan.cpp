#include "fault/plan.h"

#include <algorithm>
#include <cmath>

#include "util/assert.h"

namespace dg::fault {

// ---- ScriptFaultPlan ----

ScriptFaultPlan::ScriptFaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  DG_EXPECTS(std::is_sorted(
      events_.begin(), events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.round < b.round; }));
}

void ScriptFaultPlan::bind(const graph::DualGraph& g,
                           std::uint64_t master_seed) {
  (void)master_seed;
  for (const FaultEvent& ev : events_) {
    DG_EXPECTS(ev.vertex < g.size());
    DG_EXPECTS(ev.round >= 1);
  }
  next_ = 0;
}

void ScriptFaultPlan::plan_round(sim::Round round, const Bitmap& crashed,
                                 std::vector<FaultEvent>& out) {
  (void)crashed;
  while (next_ < events_.size() && events_[next_].round <= round) {
    if (events_[next_].round == round) out.push_back(events_[next_]);
    ++next_;
  }
}

// ---- PoissonFaultPlan ----

PoissonFaultPlan::PoissonFaultPlan(double rate, double mean_repair)
    : rate_(rate), mean_repair_(mean_repair) {
  DG_EXPECTS(rate > 0.0);
  DG_EXPECTS(mean_repair >= 1.0);
}

void PoissonFaultPlan::bind(const graph::DualGraph& g,
                            std::uint64_t master_seed) {
  DG_EXPECTS(g.size() > 0);
  per_vertex_prob_ = rate_ / static_cast<double>(g.size());
  rng_ = Rng(master_seed, kFaultStream);
  recover_at_.assign(g.size(), 0);
}

void PoissonFaultPlan::plan_round(sim::Round round, const Bitmap& crashed,
                                  std::vector<FaultEvent>& out) {
  const auto n = static_cast<graph::Vertex>(recover_at_.size());
  for (graph::Vertex v = 0; v < n; ++v) {
    if (crashed.test(v)) {
      if (recover_at_[v] != 0 && recover_at_[v] <= round) {
        out.push_back({round, v, FaultKind::kRecover});
        recover_at_[v] = 0;
      }
      continue;
    }
    if (!rng_.chance(per_vertex_prob_)) continue;
    out.push_back({round, v, FaultKind::kCrash});
    // Exponential repair time, floored to a whole round >= 1.  The clamp
    // keeps -log(u) finite for the (measure-zero) u == 0 draw.
    const double u = std::max(rng_.uniform(), 1e-12);
    const double repair = -mean_repair_ * std::log(u);
    recover_at_[v] =
        round + std::max<sim::Round>(1, static_cast<sim::Round>(repair));
  }
}

// ---- RegionFaultPlan ----

RegionFaultPlan::RegionFaultPlan(sim::Round round, graph::Vertex center,
                                 int radius, sim::Round repair)
    : kill_round_(round), center_(center), radius_(radius), repair_(repair) {
  DG_EXPECTS(round >= 1);
  DG_EXPECTS(radius >= 0);
  DG_EXPECTS(repair >= 0);
}

void RegionFaultPlan::bind(const graph::DualGraph& g,
                           std::uint64_t master_seed) {
  (void)master_seed;
  DG_EXPECTS(center_ < g.size());
  // BFS ball of `radius_` hops around the center over the reliable graph G
  // (the topology every generator guarantees; geometry is optional).
  std::vector<int> dist(g.size(), -1);
  std::vector<graph::Vertex> frontier{center_};
  dist[center_] = 0;
  region_.clear();
  region_.push_back(center_);
  for (int hop = 1; hop <= radius_ && !frontier.empty(); ++hop) {
    std::vector<graph::Vertex> next;
    for (graph::Vertex v : frontier) {
      for (graph::Vertex w : g.g_neighbors(v)) {
        if (dist[w] != -1) continue;
        dist[w] = hop;
        next.push_back(w);
        region_.push_back(w);
      }
    }
    frontier = std::move(next);
  }
  std::sort(region_.begin(), region_.end());
}

void RegionFaultPlan::plan_round(sim::Round round, const Bitmap& crashed,
                                 std::vector<FaultEvent>& out) {
  (void)crashed;
  if (round == kill_round_) {
    for (graph::Vertex v : region_) out.push_back({round, v, FaultKind::kCrash});
  } else if (repair_ > 0 && round == kill_round_ + repair_) {
    for (graph::Vertex v : region_) {
      out.push_back({round, v, FaultKind::kRecover});
    }
  }
}

// ---- AdversaryFaultPlan ----

AdversaryFaultPlan::AdversaryFaultPlan(int k, sim::Round period,
                                       sim::Round repair)
    : k_(k), period_(period), repair_(repair) {
  DG_EXPECTS(k >= 1);
  DG_EXPECTS(period >= 1);
  DG_EXPECTS(repair >= 1);
}

void AdversaryFaultPlan::bind(const graph::DualGraph& g,
                              std::uint64_t master_seed) {
  (void)master_seed;
  progress_.assign(g.size(), 0);
  recover_at_.assign(g.size(), 0);
}

void AdversaryFaultPlan::note_progress(graph::Vertex v) {
  DG_ASSERT(v < progress_.size());
  ++progress_[v];
}

void AdversaryFaultPlan::plan_round(sim::Round round, const Bitmap& crashed,
                                    std::vector<FaultEvent>& out) {
  const auto n = static_cast<graph::Vertex>(progress_.size());
  for (graph::Vertex v = 0; v < n; ++v) {
    if (recover_at_[v] != 0 && recover_at_[v] <= round) {
      out.push_back({round, v, FaultKind::kRecover});
      recover_at_[v] = 0;
    }
  }
  if (round % period_ != 0) return;
  // The k up vertices with the most acks; ties toward the lower vertex
  // (stable under the ascending scan), so the choice is a pure function of
  // the execution so far -- seed-deterministic like the adaptive jammer.
  std::vector<graph::Vertex> targets;
  for (graph::Vertex v = 0; v < n; ++v) {
    if (!crashed.test(v) && recover_at_[v] == 0) targets.push_back(v);
  }
  const std::size_t k = std::min<std::size_t>(targets.size(),
                                              static_cast<std::size_t>(k_));
  std::partial_sort(targets.begin(), targets.begin() + k, targets.end(),
                    [&](graph::Vertex a, graph::Vertex b) {
                      if (progress_[a] != progress_[b]) {
                        return progress_[a] > progress_[b];
                      }
                      return a < b;
                    });
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back({round, targets[i], FaultKind::kCrash});
    recover_at_[targets[i]] = round + repair_;
  }
}

}  // namespace dg::fault
