// Textual fault specs: one parser serves every surface that accepts a
// fault schedule (dglab --faults, scenario files' "faults" key, campaign
// matrix sweeps), mirroring traffic/spec so the grammar and the error
// messages cannot drift apart.
//
// Grammar (':'-separated, trailing numbers may be omitted for defaults):
//   crash:round:vertex[:repair]     scripted single fault: `vertex` crashes
//                                   at `round`, recovers `repair` rounds
//                                   later (0 = never; default 0)
//   poisson:rate[:mean_repair]      memoryless churn: `rate` expected
//                                   crashes/round network-wide, exponential
//                                   repair with the given mean (defaults
//                                   0.02:64)
//   region:round:center:radius[:repair]
//                                   correlated kill: the `radius`-hop
//                                   G-ball around `center` crashes at
//                                   `round`, recovers together after
//                                   `repair` rounds (0 = never; default 0)
//   adversary:k[:period[:repair]]   targeted churn: every `period` rounds
//                                   crash the k highest-progress up
//                                   vertices, each back after `repair`
//                                   rounds (defaults k:64:64)
// Richer scripts (many events) stay API-only: fault::ScriptFaultPlan.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fault/plan.h"

namespace dg::fault {

struct FaultSpec {
  enum class Kind { kCrash, kPoisson, kRegion, kAdversary };
  Kind kind = Kind::kPoisson;
  std::int64_t round = 1;       ///< crash / region kill round
  std::size_t vertex = 0;       ///< crash vertex / region center
  double rate = 0.02;           ///< poisson expected crashes per round
  double mean_repair = 64.0;    ///< poisson mean repair time (rounds)
  int radius = 1;               ///< region G-hop radius
  std::int64_t repair = 0;      ///< crash/region/adversary repair rounds
  int k = 1;                    ///< adversary crash budget per period
  std::int64_t period = 64;     ///< adversary attack period (rounds)
};

/// The one-line list of valid specs, embedded in every rejection message.
std::string valid_fault_specs();

/// Parses and range-checks a spec.  Returns the empty string and fills
/// `out` on success, else a human-readable error naming the offending
/// token and listing the valid specs.  Vertex bounds (vertex < n) are the
/// caller's check: the node count is not known here.
std::string parse_fault_spec(const std::string& spec, FaultSpec& out);

/// Builds the plan for a validated spec.  The plan is unbound; the engine
/// binds it (graph + master seed) in set_fault_plan.
std::unique_ptr<FaultPlan> build_fault_plan(const FaultSpec& spec);

}  // namespace dg::fault
