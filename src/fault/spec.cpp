#include "fault/spec.h"

#include <cmath>
#include <string>
#include <vector>

#include "scn/spec_error.h"
#include "util/assert.h"
#include "util/specparse.h"

namespace dg::fault {

namespace {

using spec::parse_num;
using spec::split;

/// Expected crash arrivals per round, network-wide.  Past one crash per
/// round the execution is just a dead network; the bound mirrors the
/// traffic grammar's kMaxRate in spirit and keeps rate/n a probability.
constexpr double kMaxCrashRate = 1.0;

constexpr double kMaxInt = 2147483647.0;  // 2^31 - 1
bool int_in(double v, double min) {
  return v == std::floor(v) && v >= min && v <= kMaxInt;
}

}  // namespace

std::string valid_fault_specs() {
  return "crash:round:vertex[:repair], poisson:rate[:mean_repair], "
         "region:round:center:radius[:repair], adversary:k[:period[:repair]]";
}

std::string parse_fault_spec(const std::string& spec, FaultSpec& out) {
  out = FaultSpec{};
  const auto parts = split(spec, ':');
  if (parts.empty()) {
    return "empty fault spec (valid: " + valid_fault_specs() + ")";
  }
  const std::string& kind = parts[0];
  const auto arity = [&](std::size_t max_args) -> std::string {
    if (parts.size() - 1 > max_args) {
      return "fault '" + kind + "' takes at most " +
             std::to_string(max_args) + " argument(s); got '" + spec + "'";
    }
    return "";
  };
  const auto arg = [&](std::size_t i, double dflt, double& value) -> bool {
    value = dflt;
    if (parts.size() <= i) return true;
    return parse_num(parts[i], value);
  };
  double a = 0, b = 0, c = 0, d = 0;
  if (kind == "crash") {
    out.kind = FaultSpec::Kind::kCrash;
    if (auto e = arity(3); !e.empty()) return e;
    if (parts.size() < 3) {
      return "crash needs crash:round:vertex[:repair]; got '" + spec + "'";
    }
    if (!arg(1, 0, a) || !int_in(a, 1) || !arg(2, 0, b) || !int_in(b, 0) ||
        !arg(3, 0, c) || !int_in(c, 0)) {
      return "malformed crash:round:vertex:repair in '" + spec +
             "' (round >= 1, vertex >= 0, repair >= 0 rounds; 0 = never)";
    }
    out.round = static_cast<std::int64_t>(a);
    out.vertex = static_cast<std::size_t>(b);
    out.repair = static_cast<std::int64_t>(c);
    return "";
  }
  if (kind == "poisson") {
    out.kind = FaultSpec::Kind::kPoisson;
    if (auto e = arity(2); !e.empty()) return e;
    if (!arg(1, 0.02, a) || !(a > 0.0 && a <= kMaxCrashRate)) {
      return "malformed poisson:rate in '" + spec +
             "' (rate must be in (0, 1] crashes/round)";
    }
    if (!arg(2, 64, b) || !(b >= 1.0 && b <= kMaxInt)) {
      return "malformed poisson mean_repair in '" + spec +
             "' (mean_repair must be in [1, 2^31) rounds)";
    }
    out.rate = a;
    out.mean_repair = b;
    return "";
  }
  if (kind == "region") {
    out.kind = FaultSpec::Kind::kRegion;
    if (auto e = arity(4); !e.empty()) return e;
    if (parts.size() < 4) {
      return "region needs region:round:center:radius[:repair]; got '" +
             spec + "'";
    }
    if (!arg(1, 0, a) || !int_in(a, 1) || !arg(2, 0, b) || !int_in(b, 0) ||
        !arg(3, 0, c) || !int_in(c, 0) || !arg(4, 0, d) || !int_in(d, 0)) {
      return "malformed region:round:center:radius:repair in '" + spec +
             "' (round >= 1, center >= 0, radius >= 0 hops, repair >= 0 "
             "rounds; 0 = never)";
    }
    out.round = static_cast<std::int64_t>(a);
    out.vertex = static_cast<std::size_t>(b);
    out.radius = static_cast<int>(c);
    out.repair = static_cast<std::int64_t>(d);
    return "";
  }
  if (kind == "adversary") {
    out.kind = FaultSpec::Kind::kAdversary;
    if (auto e = arity(3); !e.empty()) return e;
    if (!arg(1, 1, a) || !int_in(a, 1) || !arg(2, 64, b) || !int_in(b, 1) ||
        !arg(3, 64, c) || !int_in(c, 1)) {
      return "malformed adversary:k:period:repair in '" + spec +
             "' (k >= 1 targets, period >= 1 rounds, repair >= 1 rounds)";
    }
    out.k = static_cast<int>(a);
    out.period = static_cast<std::int64_t>(b);
    out.repair = static_cast<std::int64_t>(c);
    return "";
  }
  return scn::unknown_spec("fault", kind, valid_fault_specs());
}

std::unique_ptr<FaultPlan> build_fault_plan(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultSpec::Kind::kCrash: {
      std::vector<FaultEvent> events;
      events.push_back({spec.round, static_cast<graph::Vertex>(spec.vertex),
                        FaultKind::kCrash});
      if (spec.repair > 0) {
        events.push_back({spec.round + spec.repair,
                          static_cast<graph::Vertex>(spec.vertex),
                          FaultKind::kRecover});
      }
      return std::make_unique<ScriptFaultPlan>(std::move(events));
    }
    case FaultSpec::Kind::kPoisson:
      return std::make_unique<PoissonFaultPlan>(spec.rate, spec.mean_repair);
    case FaultSpec::Kind::kRegion:
      return std::make_unique<RegionFaultPlan>(
          spec.round, static_cast<graph::Vertex>(spec.vertex), spec.radius,
          spec.repair);
    case FaultSpec::Kind::kAdversary:
      return std::make_unique<AdversaryFaultPlan>(spec.k, spec.period,
                                                  spec.repair);
  }
  DG_ASSERT(false);
  return nullptr;
}

}  // namespace dg::fault
